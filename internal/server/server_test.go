package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
)

// buildStore materializes a standard-form store on disk and reopens it for
// serving with the given cache size (0 disables the cache).
func buildStore(t testing.TB, shape []int, cacheBlocks int) *shiftsplit.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cube.wav")
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{Shape: shape, Form: shiftsplit.Standard, TileBits: 2, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Materialize(dataset.Dense(shape, 7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	serving, err := shiftsplit.OpenServing(path, cacheBlocks, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { serving.Close() })
	return serving
}

func newTestServer(t testing.TB, st *shiftsplit.Store, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(st, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestPointAndRangeSumEndpoints(t *testing.T) {
	shape := []int{32, 32}
	st := buildStore(t, shape, 64)
	ts := newTestServer(t, st, Config{})

	wantV, _, err := st.Point(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/point", `{"point":[5,7]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("point status %d: %s", resp.StatusCode, body)
	}
	var pr pointResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("point response %q: %v", body, err)
	}
	if math.Abs(pr.Value-wantV) > 1e-9 {
		t.Errorf("point value %v, want %v", pr.Value, wantV)
	}
	if pr.BlocksRead != 1 {
		t.Errorf("materialized point read %d blocks, want 1", pr.BlocksRead)
	}

	wantSum, _, err := st.RangeSum([]int{4, 4}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/rangesum", `{"start":[4,4],"extent":[8,16]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rangesum status %d: %s", resp.StatusCode, body)
	}
	var rr rangeResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if math.Abs(rr.Sum-wantSum) > 1e-9 {
		t.Errorf("range sum %v, want %v", rr.Sum, wantSum)
	}
}

func TestBadRequestsGet400NotPanic(t *testing.T) {
	st := buildStore(t, []int{16, 16}, 0)
	ts := newTestServer(t, st, Config{})
	cases := []struct{ path, body string }{
		{"/v1/point", `{`},
		{"/v1/point", `{"point":[1]}`},
		{"/v1/point", `{"point":[-1,3]}`},
		{"/v1/point", `{"point":[1,99]}`},
		{"/v1/point", `{"point":[1,2],"bogus":true}`},
		{"/v1/rangesum", `{"start":[0,0],"extent":[0,4]}`},
		{"/v1/rangesum", `{"start":[-4,0],"extent":[4,4]}`},
		{"/v1/rangesum", `{"start":[9223372036854775800,0],"extent":[9,4]}`},
		{"/v1/progressive", `{"start":[0,0],"extent":[99,4]}`},
		{"/v1/olap/rollup", `{"dim":7}`},
		{"/v1/olap/slice", `{"dim":0,"index":-2}`},
		{"/v1/olap/dice", `{"dim":1,"start":3,"length":3}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400 (%s)", c.path, c.body, resp.StatusCode, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s %s: malformed error body %q", c.path, c.body, body)
		}
	}
}

func TestProgressiveStreamsAndConverges(t *testing.T) {
	shape := []int{32, 32}
	st := buildStore(t, shape, 64)
	ts := newTestServer(t, st, Config{})
	exact, _, err := st.RangeSum([]int{3, 5}, []int{9, 13})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/progressive", "application/json",
		strings.NewReader(`{"start":[3,5],"extent":[9,13],"every":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var steps []progressiveStep
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var st progressiveStep
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		steps = append(steps, st)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(steps) < 2 {
		t.Fatalf("got %d stream lines, want several", len(steps))
	}
	final := steps[len(steps)-1]
	if !final.Final {
		t.Error("last line not marked final")
	}
	if math.Abs(final.Estimate-exact) > 1e-9 {
		t.Errorf("final estimate %v, exact %v", final.Estimate, exact)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Coefficients < steps[i-1].Coefficients {
			t.Errorf("steps not monotone at %d", i)
		}
	}
}

func TestOLAPEndpointsMatchDirectOperators(t *testing.T) {
	shape := []int{16, 8}
	st := buildStore(t, shape, 64)
	ts := newTestServer(t, st, Config{})
	hat, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	check := func(path, body string, want *shiftsplit.Array) {
		t.Helper()
		resp, b := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, b)
		}
		var or olapResponse
		if err := json.Unmarshal(b, &or); err != nil {
			t.Fatal(err)
		}
		wantData := shiftsplit.Inverse(want, shiftsplit.Standard)
		if fmt.Sprint(or.Shape) != fmt.Sprint(wantData.Shape()) {
			t.Fatalf("%s: shape %v, want %v", path, or.Shape, wantData.Shape())
		}
		for i, v := range wantData.Data() {
			if math.Abs(or.Values[i]-v) > 1e-9 {
				t.Fatalf("%s: values[%d] = %v, want %v", path, i, or.Values[i], v)
			}
		}
	}
	rolled, err := shiftsplit.Rollup(hat, 1)
	if err != nil {
		t.Fatal(err)
	}
	check("/v1/olap/rollup", `{"dim":1}`, rolled)
	sliced, err := shiftsplit.SliceAt(hat, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	check("/v1/olap/slice", `{"dim":0,"index":5}`, sliced)
	diced, err := shiftsplit.DiceDyadic(hat, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	check("/v1/olap/dice", `{"dim":1,"start":4,"length":4}`, diced)
}

func TestHealthzAndStats(t *testing.T) {
	st := buildStore(t, []int{16, 16}, 32)
	ts := newTestServer(t, st, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	// Warm the cache with repeated queries, then check observability.
	for i := 0; i < 10; i++ {
		postJSON(t, ts.URL+"/v1/point", `{"point":[3,3]}`)
	}
	resp2, body := func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		return r, buf.Bytes()
	}()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp2.StatusCode)
	}
	var sr statsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("stats body %q: %v", body, err)
	}
	if sr.Queries.Served < 10 {
		t.Errorf("served = %d, want >= 10", sr.Queries.Served)
	}
	if sr.Cache == nil {
		t.Fatal("stats missing cache section on a cached store")
	}
	if sr.Cache.Hits == 0 {
		t.Error("cache hits = 0 after repeated identical queries")
	}
	if sr.Store.Blocks == 0 || sr.Store.BlockSize == 0 {
		t.Errorf("store stats incomplete: %+v", sr.Store)
	}
}

func TestOverCapacityGets429(t *testing.T) {
	st := buildStore(t, []int{16, 16}, 0)
	srv := New(st, Config{MaxConcurrent: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Occupy the only slot directly, then observe load shedding.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	resp, body := postJSON(t, ts.URL+"/v1/point", `{"point":[1,1]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if srv.rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", srv.rejected.Load())
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	st := buildStore(t, []int{16, 16}, 0)
	srv := New(st, Config{DrainTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()
	// The server answers while up...
	resp, body := postJSON(t, url+"/v1/point", `{"point":[2,2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// ...then drains cleanly on cancellation (the SIGTERM path).
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	if _, err := http.Get(url + "/v1/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	st := buildStore(t, []int{16, 16}, 0)
	ts := newTestServer(t, st, Config{})
	resp, err := http.Get(ts.URL + "/v1/point")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/point status %d, want 405", resp.StatusCode)
	}
}

// TestDrainOutlivesCanceledContext is the regression test for the drain
// context fix: the drain deadline used to be minted from a detached
// context (and a careless "fix" would derive it from ctx directly, which
// is already canceled when the drain starts — Shutdown would then abandon
// in-flight requests immediately). The drain must keep serving an
// in-flight request after ctx is canceled and still finish cleanly.
func TestDrainOutlivesCanceledContext(t *testing.T) {
	st := buildStore(t, []int{16, 16}, 0)
	srv := New(st, Config{DrainTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()
	if resp, body := postJSON(t, url+"/v1/point", `{"point":[2,2]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// Put a request in flight by sending only its headers: the connection
	// is active, so a graceful drain must wait for it.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reqBody := `{"point":[1,1]}`
	fmt.Fprintf(conn, "POST /v1/point HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(reqBody))
	time.Sleep(50 * time.Millisecond) // let the server start reading the request

	cancel()
	time.Sleep(100 * time.Millisecond) // the drain is now racing our laggard

	// Finish the request: it must still be answered, mid-drain.
	if _, err := fmt.Fprint(conn, reqBody); err != nil {
		t.Fatalf("request connection was dropped during drain: %v", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("no response during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain", resp.StatusCode)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}
