// Package server exposes a materialized SHIFT-SPLIT store over an
// HTTP/JSON API — the query-serving subsystem on top of the library's
// parallel read path. One Server multiplexes any number of concurrent
// clients onto one shared store:
//
//	POST /v1/point         {"point":[5,7]}
//	POST /v1/rangesum      {"start":[0,0],"extent":[8,8]}
//	POST /v1/progressive   {"start":[0,0],"extent":[8,8],"every":4}   (NDJSON stream)
//	POST /v1/olap/rollup   {"dim":1}
//	POST /v1/olap/slice    {"dim":1,"index":3}
//	POST /v1/olap/dice     {"dim":1,"start":4,"length":4}
//	GET  /v1/healthz
//	GET  /v1/stats
//
// Request handling is bounded two ways: a semaphore caps the number of
// queries executing at once (excess requests get 429 so load sheds at the
// edge instead of queueing without bound), and every query runs under a
// per-request deadline. Shutdown drains in-flight queries before closing.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/query"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// Config bounds and addresses a Server. Zero values pick sensible defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// MaxConcurrent caps the queries executing at once; excess requests are
	// rejected with 429 (default 64).
	MaxConcurrent int
	// QueryTimeout is the per-request deadline (default 10s).
	QueryTimeout time.Duration
	// DrainTimeout bounds how long shutdown waits for in-flight queries
	// (default 15s).
	DrainTimeout time.Duration
	// MaxResultCells caps the number of cells an OLAP result may carry in
	// one response (default 65536); larger results get 413.
	MaxResultCells int
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
	// Ingest, when non-nil, mounts the write path: POST /v1/ingest (JSON
	// and NDJSON slabs), /v1/ingest/stream, and /v1/ingest/point, plus an
	// ingest section in /v1/stats. The server borrows the ingester; the
	// caller closes it after shutdown.
	Ingest *ingest.Ingester
	// Log receives serving lifecycle messages; nil discards them.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.MaxResultCells <= 0 {
		c.MaxResultCells = 1 << 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server serves queries against one store. Create with New.
type Server struct {
	st    *shiftsplit.Store
	cfg   Config
	start time.Time
	sem   chan struct{}

	inflight atomic.Int64
	served   atomic.Int64
	rejected atomic.Int64
	failed   atomic.Int64

	olapMu    sync.Mutex
	olapHat   *shiftsplit.Array
	olapEpoch uint64 // epoch olapHat was loaded from; a flip invalidates it

	handler http.Handler
}

// New builds a Server over st. The store must outlive the server; the
// caller keeps ownership and closes it after shutdown.
func New(st *shiftsplit.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		st:    st,
		cfg:   cfg,
		start: time.Now(),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/point", s.limited(s.handlePoint))
	mux.HandleFunc("POST /v1/rangesum", s.limited(s.handleRangeSum))
	mux.HandleFunc("POST /v1/progressive", s.limited(s.handleProgressive))
	mux.HandleFunc("POST /v1/olap/rollup", s.limited(s.handleOLAP))
	mux.HandleFunc("POST /v1/olap/slice", s.limited(s.handleOLAP))
	mux.HandleFunc("POST /v1/olap/dice", s.limited(s.handleOLAP))
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	if cfg.Ingest != nil {
		mux.HandleFunc("POST /v1/ingest", s.limited(s.handleIngest))
		mux.HandleFunc("POST /v1/ingest/stream", s.limited(s.handleIngestStream))
		mux.HandleFunc("POST /v1/ingest/point", s.limited(s.handleIngestPoint))
	}
	s.handler = recoverJSON(mux)
	return s
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe serves on cfg.Addr until ctx is canceled (e.g. by
// SIGTERM), then drains in-flight queries for up to DrainTimeout before
// returning. A nil return means a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests use a
// 127.0.0.1:0 listener to get a free port).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.logf("serving on %s (max %d concurrent queries, %s timeout)",
		ln.Addr(), s.cfg.MaxConcurrent, s.cfg.QueryTimeout)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.logf("shutdown requested, draining %d in-flight queries", s.inflight.Load())
		// The drain deadline must keep running after ctx — the trigger for
		// this shutdown — is already canceled, so derive from ctx without
		// inheriting its cancellation rather than minting a detached context.
		drainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		<-errc // Serve has returned http.ErrServerClosed
		if err != nil {
			return fmt.Errorf("server: drain incomplete: %w", err)
		}
		s.logf("drained cleanly after serving %d queries", s.served.Load())
		return nil
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// limited is the admission-control middleware: bounded concurrency with
// load shedding, a per-request deadline, and failure accounting.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		defer cancel()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r.WithContext(ctx))
	}
}

// recoverJSON converts any residual panic into a 500 JSON error so one bad
// request can never take down the serving process.
func recoverJSON(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decode strictly parses a JSON request body into dst: unknown fields,
// trailing garbage, and oversized bodies are all errors.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errors.New("bad request body: trailing data")
	}
	return nil
}

// fail classifies a query error: malformed queries are the client's fault
// (400); an open circuit breaker is a temporary outage the client should
// retry (503 + Retry-After); an exhausted medium is 507; anything else is
// the store's fault (500).
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.failed.Add(1)
	switch {
	case errors.Is(err, query.ErrInvalid):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, storage.ErrUnavailable):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case storage.IsSpaceExhausted(err):
		writeError(w, http.StatusInsufficientStorage, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// degradedSince reports whether the store zero-filled any quarantined
// block since the before sample — the per-response degraded flag. Samples
// bracket each query, so a degraded answer is always flagged; under
// concurrent load a clean answer may be flagged too (another query's
// degraded read lands between the samples), which errs on the safe side:
// the flag means "may be partial", never the reverse.
func (s *Server) degradedSince(before int64) bool {
	return s.st.DegradedReads() != before
}
