package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"
	"sync"

	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// maxNDJSONSlabs caps the slab lines one NDJSON ingest request may carry
// (each line becomes a concurrent enqueue; MaxBodyBytes bounds total
// payload, this bounds the fan-out).
const maxNDJSONSlabs = 1024

type ingestSlabRequest struct {
	// Shape gives the slab's extents; Values its cells in row-major order.
	Shape  []int     `json:"shape"`
	Values []float64 `json:"values"`
}

type ingestResult struct {
	// Offset is the domain coordinate where the slab's origin landed;
	// Group/Slabs identify the group commit that sealed it and how many
	// client slabs shared it (the amortization, per response).
	Offset []int `json:"offset,omitempty"`
	Cells  int   `json:"cells,omitempty"`
	Group  int64 `json:"group,omitempty"`
	Slabs  int   `json:"slabs,omitempty"`
	// Error marks a slab line that was NOT committed (NDJSON bodies only;
	// single-slab requests report errors via the HTTP status instead).
	Error string `json:"error,omitempty"`
}

// ingestFail maps write-path errors onto the read path's status contract,
// preserving the ingest guarantee: 429 and 503 are only ever returned for
// requests that provably did not commit. An in-doubt commit falls through
// to 500 (ambiguous by nature — only reopening the backing resolves it).
func (s *Server) ingestFail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ingest.ErrBacklog):
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, ingest.ErrClosed):
		s.failed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		s.fail(w, err)
	}
}

func isNDJSON(r *http.Request) bool {
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && (ct == "application/x-ndjson" || ct == "application/ndjson")
}

// handleIngest accepts one slab (JSON body) or many (NDJSON body, one
// slab per line) and blocks until their group commit seals, so a 200
// means durable and queryable.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if isNDJSON(r) {
		s.handleIngestNDJSON(w, r)
		return
	}
	var req ingestSlabRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	slab, err := ingest.NewSlab(req.Shape, req.Values)
	if err != nil {
		s.fail(w, err)
		return
	}
	res, err := s.cfg.Ingest.Enqueue(r.Context(), slab)
	if err != nil {
		s.ingestFail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, ingestResult{Offset: res.Offset, Cells: res.Cells, Group: res.Group, Slabs: res.Slabs})
}

// handleIngestNDJSON decodes every slab line up front (any malformed line
// fails the whole request with 400 before anything is enqueued), then
// enqueues the lines concurrently — deliberately, so one network client
// still benefits from group commit across its own lines. The NDJSON
// response carries one result line per slab line, in order; lines with an
// error field were not committed.
func (s *Server) handleIngestNDJSON(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var slabs []*ndarray.Array
	for {
		var req ingestSlabRequest
		if err := dec.Decode(&req); err == io.EOF {
			break
		} else if err != nil {
			s.failed.Add(1)
			writeError(w, http.StatusBadRequest, "bad request line: "+err.Error())
			return
		}
		slab, err := ingest.NewSlab(req.Shape, req.Values)
		if err != nil {
			s.fail(w, err)
			return
		}
		if len(slabs) >= maxNDJSONSlabs {
			s.failed.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge, "too many slab lines in one request")
			return
		}
		slabs = append(slabs, slab)
	}
	if len(slabs) == 0 {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, "empty ingest body")
		return
	}
	results := make([]ingestResult, len(slabs))
	errs := make([]error, len(slabs))
	var wg sync.WaitGroup
	for i := range slabs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.cfg.Ingest.Enqueue(r.Context(), slabs[i])
			if err != nil {
				errs[i] = err
				results[i] = ingestResult{Error: err.Error()}
				return
			}
			results[i] = ingestResult{Offset: res.Offset, Cells: res.Cells, Group: res.Group, Slabs: res.Slabs}
		}(i)
	}
	wg.Wait()
	// All lines rejected: surface the first error as the request's status
	// so shed load is visible at the HTTP layer (429/503), not buried in a
	// 200 body.
	allFailed := true
	for _, err := range errs {
		if err == nil {
			allFailed = false
			break
		}
	}
	if allFailed {
		s.ingestFail(w, errs[0])
		return
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, res := range results {
		enc.Encode(res)
	}
}

type ingestStreamRequest struct {
	Values []float64 `json:"values"`
}

type ingestStreamResponse struct {
	// Items is the total stream items absorbed by the synopsis so far.
	Items int64 `json:"items"`
}

func (s *Server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	var req ingestStreamRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Values) == 0 {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, "empty stream batch")
		return
	}
	items, err := s.cfg.Ingest.AddStream(req.Values)
	if err != nil {
		s.ingestFail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, ingestStreamResponse{Items: items})
}

type ingestPointResponse struct {
	Point []int   `json:"point"`
	Value float64 `json:"value"`
}

// handleIngestPoint answers a point query against the INGESTED transform
// (the serving store is a separate read-optimized dataset) — this is the
// committed ⇒ queryable oracle the chaos harness leans on.
func (s *Server) handleIngestPoint(w http.ResponseWriter, r *http.Request) {
	var req pointRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	v, err := s.cfg.Ingest.Point(req.Point)
	if err != nil {
		s.ingestFail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, ingestPointResponse{Point: req.Point, Value: v})
}
