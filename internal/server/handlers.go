package server

import (
	"encoding/json"
	"net/http"
	"path"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/query"
)

type pointRequest struct {
	Point []int `json:"point"`
}

type pointResponse struct {
	Point      []int   `json:"point"`
	Value      float64 `json:"value"`
	BlocksRead int     `json:"blocks_read"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req pointRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := query.ValidatePoint(s.st.Shape(), req.Point); err != nil {
		s.fail(w, err)
		return
	}
	v, blocks, err := s.st.Point(req.Point...)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, pointResponse{Point: req.Point, Value: v, BlocksRead: blocks})
}

type rangeRequest struct {
	Start  []int `json:"start"`
	Extent []int `json:"extent"`
}

type rangeResponse struct {
	Start      []int   `json:"start"`
	Extent     []int   `json:"extent"`
	Sum        float64 `json:"sum"`
	BlocksRead int     `json:"blocks_read"`
}

func (s *Server) handleRangeSum(w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := query.ValidateBox(s.st.Shape(), req.Start, req.Extent); err != nil {
		s.fail(w, err)
		return
	}
	sum, blocks, err := s.st.RangeSum(req.Start, req.Extent)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, rangeResponse{Start: req.Start, Extent: req.Extent, Sum: sum, BlocksRead: blocks})
}

type progressiveRequest struct {
	Start  []int `json:"start"`
	Extent []int `json:"extent"`
	// Every emits one refinement line per this many coefficients (default
	// 1); the exact final answer is always emitted.
	Every int `json:"every"`
}

type progressiveStep struct {
	Estimate     float64 `json:"estimate"`
	Coefficients int     `json:"coefficients"`
	BlocksRead   int     `json:"blocks_read"`
	Final        bool    `json:"final,omitempty"`
}

// handleProgressive streams refinement steps as NDJSON: the client sees a
// coarse estimate after the first block read and successive refinements as
// further coefficients arrive — the paper's progressive query answering
// mode, on the wire.
func (s *Server) handleProgressive(w http.ResponseWriter, r *http.Request) {
	var req progressiveRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.st.Form() != shiftsplit.Standard {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, "progressive queries need a standard-form store")
		return
	}
	if err := query.ValidateBox(s.st.Shape(), req.Start, req.Extent); err != nil {
		s.fail(w, err)
		return
	}
	every := req.Every
	if every < 1 {
		every = 1
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // Encode appends the NDJSON newline
	ctx := r.Context()
	var last progressiveStep
	have := false
	err := s.st.ProgressiveRangeSumFunc(req.Start, req.Extent, func(st shiftsplit.ProgressiveStep) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = progressiveStep{Estimate: st.Estimate, Coefficients: st.Coefficients, BlocksRead: st.Blocks}
		have = true
		if st.Coefficients%every == 0 {
			if err := enc.Encode(last); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return nil
	})
	if err != nil {
		// The stream is already committed; all we can do is stop. The
		// missing final line tells the client the answer is incomplete.
		s.failed.Add(1)
		return
	}
	if have {
		last.Final = true
		enc.Encode(last)
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.served.Add(1)
}

type olapRequest struct {
	Dim    int `json:"dim"`
	Index  int `json:"index,omitempty"`
	Start  int `json:"start,omitempty"`
	Length int `json:"length,omitempty"`
}

type olapResponse struct {
	Op     string    `json:"op"`
	Dim    int       `json:"dim"`
	Shape  []int     `json:"shape"`
	Values []float64 `json:"values"`
}

// olapTransform lazily loads the whole transform into memory once; the
// OLAP operators then run in the wavelet domain without touching disk.
func (s *Server) olapTransform() (*shiftsplit.Array, error) {
	s.olapOnce.Do(func() {
		s.olapHat, s.olapErr = s.st.ReadTransform()
	})
	return s.olapHat, s.olapErr
}

func (s *Server) handleOLAP(w http.ResponseWriter, r *http.Request) {
	op := path.Base(r.URL.Path)
	var req olapRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.st.Form() != shiftsplit.Standard {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, "OLAP operators need a standard-form store")
		return
	}
	hat, err := s.olapTransform()
	if err != nil {
		s.fail(w, err)
		return
	}
	// The facade validates dimensions and indices itself, wrapping
	// query.ErrInvalid; fail() maps those to 400 responses.
	var out *shiftsplit.Array
	switch op {
	case "rollup":
		out, err = shiftsplit.Rollup(hat, req.Dim)
	case "slice":
		out, err = shiftsplit.SliceAt(hat, req.Dim, req.Index)
	case "dice":
		out, err = shiftsplit.DiceDyadic(hat, req.Dim, req.Start, req.Length)
	default:
		s.failed.Add(1)
		writeError(w, http.StatusNotFound, "unknown OLAP operator")
		return
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	if out.Size() > s.cfg.MaxResultCells {
		s.failed.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, "result cube too large for one response")
		return
	}
	// The operators return the transform of the result cube; clients want
	// data values, so invert before responding.
	data := shiftsplit.Inverse(out, shiftsplit.Standard)
	s.served.Add(1)
	writeJSON(w, olapResponse{Op: op, Dim: req.Dim, Shape: data.Shape(), Values: data.Data()})
}

type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, healthResponse{Status: "ok", UptimeSeconds: time.Since(s.start).Seconds()})
}

type statsResponse struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Queries       queryStats             `json:"queries"`
	Store         storeStats             `json:"store"`
	Cache         *shiftsplit.CacheStats `json:"cache,omitempty"`
}

type queryStats struct {
	Served   int64 `json:"served"`
	Failed   int64 `json:"failed"`
	Rejected int64 `json:"rejected"`
	Inflight int64 `json:"inflight"`
}

type storeStats struct {
	Shape     []int  `json:"shape"`
	Form      string `json:"form"`
	Blocks    int    `json:"blocks"`
	BlockSize int    `json:"block_size"`
	Reads     int64  `json:"reads"`
	Writes    int64  `json:"writes"`
	Syncs     int64  `json:"syncs"`
	Commits   int64  `json:"commits"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	io := s.st.Stats()
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queries: queryStats{
			Served:   s.served.Load(),
			Failed:   s.failed.Load(),
			Rejected: s.rejected.Load(),
			Inflight: s.inflight.Load(),
		},
		Store: storeStats{
			Shape:     s.st.Shape(),
			Form:      s.st.Form().String(),
			Blocks:    s.st.NumBlocks(),
			BlockSize: s.st.BlockSize(),
			Reads:     io.Reads,
			Writes:    io.Writes,
			Syncs:     io.Syncs,
			Commits:   io.Commits,
		},
	}
	if cs, ok := s.st.CacheStats(); ok {
		resp.Cache = &cs
	}
	writeJSON(w, resp)
}
