package server

import (
	"encoding/json"
	"net/http"
	"path"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/query"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

type pointRequest struct {
	Point []int `json:"point"`
}

type pointResponse struct {
	Point      []int   `json:"point"`
	Value      float64 `json:"value"`
	BlocksRead int     `json:"blocks_read"`
	// Degraded marks an answer that may be partial: at least one block it
	// touched was quarantined and served as zeros.
	Degraded bool `json:"degraded,omitempty"`
	// Epoch is the committed epoch the answer was read from (versioned
	// stores only): the whole request resolved one pinned snapshot, even if
	// maintenance flipped mid-flight.
	Epoch uint64 `json:"epoch,omitempty"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req pointRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := query.ValidatePoint(s.st.Shape(), req.Point); err != nil {
		s.fail(w, err)
		return
	}
	before := s.st.DegradedReads()
	snap := s.st.AcquireSnapshot()
	defer snap.Release()
	v, blocks, err := snap.Point(req.Point...)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, pointResponse{Point: req.Point, Value: v, BlocksRead: blocks, Degraded: s.degradedSince(before), Epoch: snap.Epoch()})
}

type rangeRequest struct {
	Start  []int `json:"start"`
	Extent []int `json:"extent"`
}

type rangeResponse struct {
	Start      []int   `json:"start"`
	Extent     []int   `json:"extent"`
	Sum        float64 `json:"sum"`
	BlocksRead int     `json:"blocks_read"`
	Degraded   bool    `json:"degraded,omitempty"` // see pointResponse.Degraded
	Epoch      uint64  `json:"epoch,omitempty"`    // see pointResponse.Epoch
}

func (s *Server) handleRangeSum(w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := query.ValidateBox(s.st.Shape(), req.Start, req.Extent); err != nil {
		s.fail(w, err)
		return
	}
	before := s.st.DegradedReads()
	snap := s.st.AcquireSnapshot()
	defer snap.Release()
	sum, blocks, err := snap.RangeSum(req.Start, req.Extent)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, rangeResponse{Start: req.Start, Extent: req.Extent, Sum: sum, BlocksRead: blocks, Degraded: s.degradedSince(before), Epoch: snap.Epoch()})
}

type progressiveRequest struct {
	Start  []int `json:"start"`
	Extent []int `json:"extent"`
	// Every emits one refinement line per this many coefficients (default
	// 1); the exact final answer is always emitted.
	Every int `json:"every"`
}

type progressiveStep struct {
	Estimate     float64 `json:"estimate"`
	Coefficients int     `json:"coefficients"`
	BlocksRead   int     `json:"blocks_read"`
	Degraded     bool    `json:"degraded,omitempty"` // see pointResponse.Degraded
	Final        bool    `json:"final,omitempty"`
}

// handleProgressive streams refinement steps as NDJSON: the client sees a
// coarse estimate after the first block read and successive refinements as
// further coefficients arrive — the paper's progressive query answering
// mode, on the wire.
func (s *Server) handleProgressive(w http.ResponseWriter, r *http.Request) {
	var req progressiveRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.st.Form() != shiftsplit.Standard {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, "progressive queries need a standard-form store")
		return
	}
	if err := query.ValidateBox(s.st.Shape(), req.Start, req.Extent); err != nil {
		s.fail(w, err)
		return
	}
	every := req.Every
	if every < 1 {
		every = 1
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // Encode appends the NDJSON newline
	ctx := r.Context()
	before := s.st.DegradedReads()
	// One pin for the whole stream: every refinement line describes the same
	// epoch even while maintenance flips underneath.
	snap := s.st.AcquireSnapshot()
	defer snap.Release()
	var last progressiveStep
	have := false
	err := snap.ProgressiveRangeSumFunc(req.Start, req.Extent, func(st shiftsplit.ProgressiveStep) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = progressiveStep{Estimate: st.Estimate, Coefficients: st.Coefficients, BlocksRead: st.Blocks, Degraded: s.degradedSince(before)}
		have = true
		if st.Coefficients%every == 0 {
			if err := enc.Encode(last); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return nil
	})
	if err != nil {
		// The stream is already committed; all we can do is stop. The
		// missing final line tells the client the answer is incomplete.
		s.failed.Add(1)
		return
	}
	if have {
		last.Final = true
		last.Degraded = s.degradedSince(before)
		enc.Encode(last)
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.served.Add(1)
}

type olapRequest struct {
	Dim    int `json:"dim"`
	Index  int `json:"index,omitempty"`
	Start  int `json:"start,omitempty"`
	Length int `json:"length,omitempty"`
}

type olapResponse struct {
	Op       string    `json:"op"`
	Dim      int       `json:"dim"`
	Shape    []int     `json:"shape"`
	Values   []float64 `json:"values"`
	Degraded bool      `json:"degraded,omitempty"` // see pointResponse.Degraded
}

// olapTransform lazily loads the whole transform into memory; the OLAP
// operators then run in the wavelet domain without touching disk. Only a
// clean load is cached: a load that read zero-filled quarantined blocks
// (or errored) is served degraded once and retried on the next request,
// so a repaired store stops answering from stale corrupt data. The cache
// is keyed by epoch: on a versioned store a maintenance flip invalidates
// the cube and the next request reloads from a snapshot of the new epoch
// (non-versioned stores stay at epoch 0 and cache forever, as before).
func (s *Server) olapTransform() (hat *shiftsplit.Array, degraded bool, err error) {
	s.olapMu.Lock()
	defer s.olapMu.Unlock()
	if s.olapHat != nil && s.olapEpoch == s.st.CurrentEpoch() {
		return s.olapHat, false, nil
	}
	before := s.st.DegradedReads()
	snap := s.st.AcquireSnapshot()
	defer snap.Release()
	hat, err = snap.ReadTransform()
	if err != nil {
		return nil, false, err
	}
	degraded = s.degradedSince(before) || len(s.st.Quarantined()) > 0
	if !degraded {
		s.olapHat, s.olapEpoch = hat, snap.Epoch()
	}
	return hat, degraded, nil
}

func (s *Server) handleOLAP(w http.ResponseWriter, r *http.Request) {
	op := path.Base(r.URL.Path)
	var req olapRequest
	if err := decode(r, &req); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.st.Form() != shiftsplit.Standard {
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, "OLAP operators need a standard-form store")
		return
	}
	hat, degraded, err := s.olapTransform()
	if err != nil {
		s.fail(w, err)
		return
	}
	// The facade validates dimensions and indices itself, wrapping
	// query.ErrInvalid; fail() maps those to 400 responses.
	var out *shiftsplit.Array
	switch op {
	case "rollup":
		out, err = shiftsplit.Rollup(hat, req.Dim)
	case "slice":
		out, err = shiftsplit.SliceAt(hat, req.Dim, req.Index)
	case "dice":
		out, err = shiftsplit.DiceDyadic(hat, req.Dim, req.Start, req.Length)
	default:
		s.failed.Add(1)
		writeError(w, http.StatusNotFound, "unknown OLAP operator")
		return
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	if out.Size() > s.cfg.MaxResultCells {
		s.failed.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, "result cube too large for one response")
		return
	}
	// The operators return the transform of the result cube; clients want
	// data values, so invert before responding.
	data := shiftsplit.Inverse(out, shiftsplit.Standard)
	s.served.Add(1)
	writeJSON(w, olapResponse{Op: op, Dim: req.Dim, Shape: data.Shape(), Values: data.Data(), Degraded: degraded})
}

type healthResponse struct {
	// Status is "ok" or "degraded" (quarantined blocks or a non-closed
	// breaker). A degraded store keeps serving — flagged, never silent.
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Quarantined   int     `json:"quarantined,omitempty"`
	DegradedReads int64   `json:"degraded_reads,omitempty"`
	Breaker       string  `json:"breaker,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.st.Health()
	writeJSON(w, healthResponse{
		Status:        h.Status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Quarantined:   h.Quarantined,
		DegradedReads: h.DegradedReads,
		Breaker:       h.Breaker,
	})
}

type statsResponse struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Queries       queryStats                 `json:"queries"`
	Store         storeStats                 `json:"store"`
	Cache         *shiftsplit.CacheStats     `json:"cache,omitempty"`
	Health        shiftsplit.Health          `json:"health"`
	Quarantined   []storage.QuarantineRecord `json:"quarantined,omitempty"`
	Scrub         *storage.ScrubStats        `json:"scrub,omitempty"`
	Breaker       *breakerStats              `json:"breaker,omitempty"`
	// Epochs reports the MVCC layer on versioned stores: current epoch,
	// outstanding snapshot pins (oldest pinned epoch exposes leaks holding
	// back reclamation), and free/reclaimable physical blocks.
	Epochs *shiftsplit.EpochStats `json:"epochs,omitempty"`
	// Ingest carries the write path's fsync-amortization accounting
	// (appends-per-journal-group, items/sec, commit latency histogram)
	// when the server mounts an ingester.
	Ingest *ingest.Stats `json:"ingest,omitempty"`
}

type breakerStats struct {
	State    string `json:"state"`
	Trips    int64  `json:"trips"`
	Rejected int64  `json:"rejected"`
}

type queryStats struct {
	Served   int64 `json:"served"`
	Failed   int64 `json:"failed"`
	Rejected int64 `json:"rejected"`
	Inflight int64 `json:"inflight"`
}

type storeStats struct {
	Shape     []int  `json:"shape"`
	Form      string `json:"form"`
	Blocks    int    `json:"blocks"`
	BlockSize int    `json:"block_size"`
	Reads     int64  `json:"reads"`
	Writes    int64  `json:"writes"`
	Syncs     int64  `json:"syncs"`
	Commits   int64  `json:"commits"`
	// MappedReads is the subset of reads served zero-syscall from a
	// memory mapping (stores opened with Mapped).
	MappedReads int64 `json:"mapped_reads"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	io := s.st.Stats()
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queries: queryStats{
			Served:   s.served.Load(),
			Failed:   s.failed.Load(),
			Rejected: s.rejected.Load(),
			Inflight: s.inflight.Load(),
		},
		Store: storeStats{
			Shape:       s.st.Shape(),
			Form:        s.st.Form().String(),
			Blocks:      s.st.NumBlocks(),
			BlockSize:   s.st.BlockSize(),
			Reads:       io.Reads,
			Writes:      io.Writes,
			Syncs:       io.Syncs,
			Commits:     io.Commits,
			MappedReads: io.MappedReads,
		},
	}
	if cs, ok := s.st.CacheStats(); ok {
		resp.Cache = &cs
	}
	resp.Health = s.st.Health()
	resp.Quarantined = s.st.Quarantined()
	if ss, ok := s.st.ScrubStats(); ok {
		resp.Scrub = &ss
	}
	if state, trips, rejected, ok := s.st.BreakerStats(); ok {
		resp.Breaker = &breakerStats{State: state, Trips: trips, Rejected: rejected}
	}
	if es, ok := s.st.EpochStats(); ok {
		resp.Epochs = &es
	}
	if s.cfg.Ingest != nil {
		ist := s.cfg.Ingest.Stats()
		resp.Ingest = &ist
	}
	writeJSON(w, resp)
}
