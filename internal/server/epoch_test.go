package server

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
)

// buildVersionedStore materializes a versioned durable store and reopens it
// for serving: the configuration where queries pin MVCC epoch snapshots.
func buildVersionedStore(t testing.TB, shape []int, cacheBlocks int) *shiftsplit.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cube.wav")
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: shape, Form: shiftsplit.Standard, TileBits: 2, Path: path,
		Durable: true, Versioned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Materialize(dataset.Dense(shape, 7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	serving, err := shiftsplit.OpenServing(path, cacheBlocks, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { serving.Close() })
	return serving
}

// TestEpochReportingEndpoints checks the satellite-6 observability surface:
// query responses carry the pinned epoch, /v1/stats reports the epochs
// section, and a maintenance flip is visible in both.
func TestEpochReportingEndpoints(t *testing.T) {
	shape := []int{32, 32}
	st := buildVersionedStore(t, shape, 64)
	ts := newTestServer(t, st, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/point", `{"point":[5,7]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("point status %d: %s", resp.StatusCode, body)
	}
	var pr pointResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	wantEpoch := st.CurrentEpoch()
	if wantEpoch == 0 {
		t.Fatal("versioned store at epoch 0 after materialize")
	}
	if pr.Epoch != wantEpoch {
		t.Fatalf("point response epoch %d, store at %d", pr.Epoch, wantEpoch)
	}

	resp, body = postJSON(t, ts.URL+"/v1/rangesum", `{"start":[0,0],"extent":[8,8]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range-sum status %d: %s", resp.StatusCode, body)
	}
	var rr rangeResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Epoch != wantEpoch {
		t.Fatalf("range response epoch %d, store at %d", rr.Epoch, wantEpoch)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Epochs == nil {
		t.Fatal("stats of a versioned store carry no epochs section")
	}
	if stats.Epochs.Epoch != wantEpoch {
		t.Fatalf("stats epoch %d, store at %d", stats.Epochs.Epoch, wantEpoch)
	}
	if stats.Epochs.Pinned != 0 {
		t.Fatalf("stats report %d pinned snapshots with no request in flight", stats.Epochs.Pinned)
	}

	// A maintenance flip must show up in subsequent responses.
	delta := dataset.Dense([]int{8, 8}, 11)
	if err := st.MergeBlock(shiftsplit.CubeBlock(3, 1, 2), shiftsplit.Transform(delta, shiftsplit.Standard)); err != nil {
		t.Fatal(err)
	}
	if got := st.CurrentEpoch(); got != wantEpoch+1 {
		t.Fatalf("epoch after merge = %d, want %d", got, wantEpoch+1)
	}
	resp, body = postJSON(t, ts.URL+"/v1/point", `{"point":[5,7]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-flip point status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Epoch != wantEpoch+1 {
		t.Fatalf("post-flip point response epoch %d, want %d", pr.Epoch, wantEpoch+1)
	}
}

// TestOLAPCacheInvalidatesOnFlip: the in-memory OLAP cube is epoch-keyed —
// a maintenance flip makes the next OLAP request reload instead of serving
// the stale pre-flip cube.
func TestOLAPCacheInvalidatesOnFlip(t *testing.T) {
	shape := []int{16, 16}
	st := buildVersionedStore(t, shape, 64)
	ts := newTestServer(t, st, Config{})

	olap := func() []float64 {
		resp, body := postJSON(t, ts.URL+"/v1/olap/rollup", `{"dim":0}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rollup status %d: %s", resp.StatusCode, body)
		}
		var or olapResponse
		if err := json.Unmarshal(body, &or); err != nil {
			t.Fatal(err)
		}
		return or.Values
	}
	before := olap()

	// Merge a delta that changes the rolled-up values.
	delta := dataset.Dense([]int{4, 4}, 3)
	if err := st.MergeBlock(shiftsplit.CubeBlock(2, 1, 1), shiftsplit.Transform(delta, shiftsplit.Standard)); err != nil {
		t.Fatal(err)
	}
	after := olap()
	if len(before) != len(after) {
		t.Fatalf("rollup shape changed: %d -> %d", len(before), len(after))
	}
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("OLAP response unchanged after a flip — stale epoch-0-style cube cache")
	}
}
