package chaos

import (
	"context"
	"testing"
	"time"
)

// TestChaosSmoke is the `make chaos-smoke` entry point: one full
// healthy → faulted → recovered arc over a real HTTP server. Run it with
// -race; the harness is as much a concurrency test as a fault test.
func TestChaosSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Options{Seed: 7, Logf: t.Logf})
	if err != nil {
		t.Fatalf("chaos run violated an invariant: %v (phases %+v)", err, res.Phases)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %+v", res.Phases)
	}
	// The faulted phase must actually have exercised the degraded path:
	// with two rotted frames and a continuous scrubber, load either hits
	// the quarantine (degraded 200s) or the fault window (errors).
	faulted := res.Phases[1]
	if faulted.Degraded+faulted.Errors == 0 {
		t.Fatalf("faulted phase saw no degraded answers and no errors: %+v", faulted)
	}
	if res.QuarantinedPeak < len(res.Rotted) {
		t.Fatalf("quarantine peak %d < rotted %d", res.QuarantinedPeak, len(res.Rotted))
	}
	// The ingest saboteurs must have exercised the write path while the
	// store was healthy, and every accepted slab must have survived the
	// audit (Run fails otherwise; this asserts the phase wasn't empty).
	if res.Phases[0].IngestAccepted == 0 {
		t.Fatalf("healthy phase accepted no ingest slabs: %+v", res.Phases[0])
	}
	if res.IngestVerified == 0 {
		t.Fatal("ingest audit verified nothing")
	}
}

// TestChaosSeeds runs the arc under a couple more seeds so the fault
// schedule (which blocks rot, where EIOs land) varies.
func TestChaosSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: one seed is enough")
	}
	for _, seed := range []int64{11, 23} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := Run(ctx, Options{Seed: seed, PhaseDuration: 200 * time.Millisecond, Logf: t.Logf})
			if err != nil {
				t.Fatalf("seed %d: %v (phases %+v)", seed, err, res.Phases)
			}
		})
	}
}
