// Package chaos is the full-stack fault-injection harness: it stands up a
// real HTTP serving process over a durable store, then drives it through a
// healthy → faulted → recovered arc while client goroutines hammer the
// query API and check every answer against an in-memory oracle.
//
// The harness asserts the robustness contract end to end:
//
//   - Never silently wrong: an unflagged 200 answer must match the oracle;
//     under injected EIO, latency, read bit-rot, and persistent on-media
//     rot, every other outcome (error status, degraded flag) is legal —
//     a clean-looking wrong answer is not.
//   - Detection: every block rotted on the medium ends up quarantined by
//     the background scrubber while faults are active.
//   - Convergence: after the faults stop and the store is re-materialized,
//     health returns to "ok" and answers are clean and exact again.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/server"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// ingestCross is the cross-section extent of the saboteurs' slabs: each
// ingest request appends one [ingestCross, 1] column.
const ingestCross = 4

// Options configures a chaos run. The zero value picks a smoke-sized run.
type Options struct {
	// Shape of the store's domain (default 32x32).
	Shape []int
	// Clients is the number of querying goroutines (default 8).
	Clients int
	// PhaseDuration bounds each load phase (default 400ms).
	PhaseDuration time.Duration
	// Seed pins the dataset, fault RNG, and query mix.
	Seed int64
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if len(o.Shape) == 0 {
		o.Shape = []int{32, 32}
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.PhaseDuration <= 0 {
		o.PhaseDuration = 400 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// PhaseReport is the outcome of one load phase.
type PhaseReport struct {
	Name     string
	Queries  int64 // HTTP round-trips completed
	OK       int64 // clean 200 answers (checked against the oracle)
	Degraded int64 // 200 answers carrying the degraded flag
	Errors   int64 // non-200 responses (4xx/5xx/503 shed)
	Wrong    int64 // unflagged 200 answers that contradicted the oracle

	// The concurrent-ingest saboteurs' tallies: accepted slabs (200,
	// recorded in the ledger for the committed ⇒ queryable audit), shed
	// slabs (429/503 — provably not committed), and anything else.
	IngestAccepted int64
	IngestShed     int64
	IngestFailed   int64
}

// Result is the full run's outcome.
type Result struct {
	Phases []PhaseReport
	// Rotted lists the block ids whose frames were corrupted on the
	// medium during the faulted phase.
	Rotted []int
	// QuarantinedPeak is the registry size when detection was asserted.
	QuarantinedPeak int
	// IngestVerified counts the cells of accepted slabs that were read
	// back exactly through /v1/ingest/point at the end of the run.
	IngestVerified int
}

// Run executes the harness. A non-nil error means a robustness invariant
// was violated (or the environment failed); the Result is returned either
// way for reporting.
func Run(ctx context.Context, o Options) (*Result, error) {
	o = o.withDefaults()
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{}

	dir, err := os.MkdirTemp("", "shiftsplit-chaos")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "chaos.wav")

	// Build the store and the oracle it must keep agreeing with.
	oracle := dataset.Dense(o.Shape, o.Seed)
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: o.Shape, Form: shiftsplit.Standard, TileBits: 2, Path: path, Durable: true,
	})
	if err != nil {
		return res, err
	}
	if err := st.Materialize(oracle); err != nil {
		_ = st.Close()
		return res, err
	}
	if err := st.Close(); err != nil {
		return res, err
	}

	// Serving stack with the full robustness kit: Faulty slid under the
	// checksum layer, a breaker over the device, a small cache, and the
	// background scrubber sweeping continuously.
	var faulty *storage.Faulty
	serving, err := shiftsplit.OpenServingOpts(path, shiftsplit.ServeOptions{
		CacheBlocks: 8,
		Breaker:     &storage.BreakerOptions{Threshold: 5, Cooldown: 50 * time.Millisecond},
		BaseWrap: func(bs storage.BlockStore) storage.BlockStore {
			faulty = storage.NewFaulty(bs)
			return faulty
		},
	})
	if err != nil {
		return res, err
	}
	defer serving.Close()
	if err := serving.StartScrub(ctx, 25*time.Millisecond, 0); err != nil {
		return res, err
	}

	// The write path under sabotage: an ingester whose admission gate
	// defers to the serving store's health, so quarantine and breaker
	// trips shed appends with 503 instead of committing into a store the
	// operator cannot trust.
	app, err := appender.New([]int{ingestCross, ingestCross}, 1)
	if err != nil {
		return res, err
	}
	ingester, err := ingest.New(app, ingest.Config{
		Dim:           1,
		FlushInterval: time.Millisecond,
		Gate: func() error {
			if h := serving.Health(); h.Status != "ok" {
				return fmt.Errorf("%w: serving store is %s", storage.ErrUnavailable, h.Status)
			}
			return nil
		},
	})
	if err != nil {
		return res, err
	}
	defer func() { _ = ingester.Close() }() // saboteurs are joined before the audit

	srv := server.New(serving, server.Config{MaxConcurrent: 4 * o.Clients, Ingest: ingester})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	srvCtx, stopSrv := context.WithCancel(context.Background())
	defer stopSrv()
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(srvCtx, ln) }()
	base := "http://" + ln.Addr().String()

	h := &harness{o: o, base: base, oracle: oracle, logf: logf,
		ledger: &ingestLedger{slabs: make(map[int][]float64)}}

	// Phase 1: healthy. Every answer must be clean and exact.
	if status, err := h.healthz(); err != nil || status != "ok" {
		return res, fmt.Errorf("chaos: initial health = %q, err %v", status, err)
	}
	rep := h.load(ctx, "healthy")
	res.Phases = append(res.Phases, rep)
	if rep.Wrong > 0 {
		return res, fmt.Errorf("chaos: %d wrong answers while healthy", rep.Wrong)
	}
	if rep.OK == 0 {
		return res, fmt.Errorf("chaos: no successful queries while healthy")
	}

	// Phase 2: faulted. Persistent on-media rot plus transient EIO, read
	// bit-rot, and latency — under load.
	res.Rotted, err = rotFrames(path, serving.BlockSize(), 2)
	if err != nil {
		return res, err
	}
	logf("rotted blocks %v on the medium", res.Rotted)
	faulty.FailReadsWithProbability(0.10, o.Seed)
	faulty.RotReadsWithProbability(0.05, o.Seed+1)
	faulty.Delay(100 * time.Microsecond)
	rep = h.load(ctx, "faulted")
	res.Phases = append(res.Phases, rep)
	if rep.Wrong > 0 {
		return res, fmt.Errorf("chaos: %d silently wrong answers under faults", rep.Wrong)
	}

	// Detection: every on-media rotted block must be quarantined (the
	// scrubber keeps sweeping; give it a few passes), and health must say
	// degraded.
	if err := h.waitFor(5*time.Second, func() (bool, string) {
		recs := serving.Quarantined()
		have := make(map[int]bool, len(recs))
		for _, r := range recs {
			have[r.Block] = true
		}
		for _, id := range res.Rotted {
			if !have[id] {
				return false, fmt.Sprintf("block %d not quarantined (registry %v)", id, recs)
			}
		}
		res.QuarantinedPeak = len(recs)
		return true, ""
	}); err != nil {
		return res, fmt.Errorf("chaos: detection failed: %w", err)
	}
	if status, err := h.healthz(); err != nil || status != "degraded" {
		return res, fmt.Errorf("chaos: health under faults = %q, err %v", status, err)
	}
	logf("detection complete: %d quarantined, health degraded", res.QuarantinedPeak)

	// Gate integration: with health degraded the write path must shed —
	// and a shed answer is a guarantee of non-commitment, which the final
	// frontier audit cross-checks.
	body, _ := json.Marshal(map[string]any{
		"shape": []int{ingestCross, 1}, "values": make([]float64, ingestCross),
	})
	if status, resp, err := h.post("/v1/ingest", body); err != nil || status != http.StatusServiceUnavailable {
		return res, fmt.Errorf("chaos: ingest while degraded: status %d, err %v (%s)", status, err, resp)
	}

	// Phase 3: recovered. Stop injecting, heal the medium, and require
	// convergence back to a clean, exact store.
	faulty.FailReadsWithProbability(0, 0)
	faulty.RotReadsWithProbability(0, 0)
	faulty.Delay(0)
	mt, err := shiftsplit.OpenStore(path)
	if err != nil {
		return res, err
	}
	if err := mt.Materialize(oracle); err != nil {
		_ = mt.Close()
		return res, err
	}
	if err := mt.Close(); err != nil {
		return res, err
	}
	// Health convergence needs live traffic: the breaker only half-opens
	// a probe when a request arrives, and the scrubber needs a pass over
	// the healed frames. The probe rng persists across poll rounds so the
	// queries spread over blocks — a single repeated point would be served
	// from cache and never reach an open breaker.
	probeRng := rngFor(o.Seed + 1000)
	if err := h.waitFor(5*time.Second, func() (bool, string) {
		h.point(probeRng, &PhaseReport{})
		status, err := h.healthz()
		if err != nil {
			return false, err.Error()
		}
		return status == "ok", fmt.Sprintf("health %q, quarantine %v", status, serving.Quarantined())
	}); err != nil {
		return res, fmt.Errorf("chaos: store did not converge to healthy: %w", err)
	}
	rep = h.load(ctx, "recovered")
	res.Phases = append(res.Phases, rep)
	if rep.Wrong > 0 {
		return res, fmt.Errorf("chaos: %d wrong answers after recovery", rep.Wrong)
	}
	if rep.Degraded > 0 {
		return res, fmt.Errorf("chaos: %d degraded answers after recovery", rep.Degraded)
	}
	if rep.OK == 0 {
		return res, fmt.Errorf("chaos: no successful queries after recovery")
	}

	// The ingest audit: every accepted slab must be queryable with exact
	// values, and the appender's frontier must equal the accepted count —
	// a shed slab that secretly committed, or an accepted slab that
	// vanished, both break that equality.
	res.IngestVerified, err = h.verifyIngest(ingester)
	if err != nil {
		return res, fmt.Errorf("chaos: ingest audit: %w", err)
	}
	logf("ingest audit: %d accepted slabs, %d cells verified exact",
		len(h.ledger.slabs), res.IngestVerified)

	stopSrv()
	if err := <-srvDone; err != nil {
		return res, fmt.Errorf("chaos: server shutdown: %w", err)
	}
	return res, nil
}

// harness carries the per-run client state.
type harness struct {
	o      Options
	base   string
	oracle *shiftsplit.Array
	logf   func(string, ...any)
	ledger *ingestLedger
}

// ingestLedger records what the saboteurs were told was committed: the
// slab values by frontier offset. It is the write path's oracle.
type ingestLedger struct {
	mu    sync.Mutex
	slabs map[int][]float64 // offset along the append dim → slab values
	dup   string            // set when two 200s claimed the same offset
}

func (l *ingestLedger) record(off int, vals []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.slabs[off]; ok && l.dup == "" {
		l.dup = fmt.Sprintf("two accepted slabs claim offset %d", off)
	}
	l.slabs[off] = vals
}

func rngFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// load runs o.Clients query goroutines for one phase and tallies outcomes.
func (h *harness) load(ctx context.Context, name string) PhaseReport {
	rep := PhaseReport{Name: name}
	var queries, ok, degraded, errs, wrong atomic.Int64
	var accepted, shed, failed atomic.Int64
	deadline := time.Now().Add(h.o.PhaseDuration)
	var wg sync.WaitGroup
	for c := 0; c < h.o.Clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rngFor(seed)
			sub := PhaseReport{}
			for time.Now().Before(deadline) && ctx.Err() == nil {
				if rng.Intn(100) < 30 {
					h.rangeSum(rng, &sub)
				} else {
					h.point(rng, &sub)
				}
			}
			queries.Add(sub.Queries)
			ok.Add(sub.OK)
			degraded.Add(sub.Degraded)
			errs.Add(sub.Errors)
			wrong.Add(sub.Wrong)
		}(h.o.Seed + int64(c))
	}
	// Two ingest saboteurs append concurrently with the query load (and
	// the background scrubber), recording every accepted slab for the
	// end-of-run audit.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rngFor(seed)
			sub := PhaseReport{}
			for time.Now().Before(deadline) && ctx.Err() == nil {
				h.ingestSlab(rng, &sub)
			}
			accepted.Add(sub.IngestAccepted)
			shed.Add(sub.IngestShed)
			failed.Add(sub.IngestFailed)
		}(h.o.Seed + 500 + int64(c))
	}
	wg.Wait()
	rep.Queries = queries.Load()
	rep.OK = ok.Load()
	rep.Degraded = degraded.Load()
	rep.Errors = errs.Load()
	rep.Wrong = wrong.Load()
	rep.IngestAccepted = accepted.Load()
	rep.IngestShed = shed.Load()
	rep.IngestFailed = failed.Load()
	h.logf("phase %-9s %5d queries: %d ok, %d degraded, %d errors, %d WRONG; ingest %d accepted, %d shed, %d failed",
		name, rep.Queries, rep.OK, rep.Degraded, rep.Errors, rep.Wrong,
		rep.IngestAccepted, rep.IngestShed, rep.IngestFailed)
	return rep
}

// ingestSlab posts one random [ingestCross, 1] slab. A 200 is recorded in
// the ledger (the server promised durability); 429/503 promise
// non-commitment and are tallied as shed; anything else is a failure.
func (h *harness) ingestSlab(rng *rand.Rand, rep *PhaseReport) {
	vals := make([]float64, ingestCross)
	for i := range vals {
		vals[i] = float64(rng.Intn(2000)-1000) / 8
	}
	body, _ := json.Marshal(map[string]any{"shape": []int{ingestCross, 1}, "values": vals})
	status, resp, err := h.post("/v1/ingest", body)
	if err != nil {
		rep.IngestFailed++
		return
	}
	switch status {
	case http.StatusOK:
		var res struct {
			Offset []int `json:"offset"`
		}
		if jerr := json.Unmarshal(resp, &res); jerr != nil || len(res.Offset) != 2 {
			rep.IngestFailed++
			return
		}
		h.ledger.record(res.Offset[1], vals)
		rep.IngestAccepted++
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		rep.IngestShed++
	default:
		rep.IngestFailed++
	}
}

// verifyIngest is the committed ⇒ queryable audit: the appender frontier
// must equal the accepted slab count exactly (so no shed slab committed
// and no accepted slab vanished), and every recorded cell must read back
// exactly through /v1/ingest/point.
func (h *harness) verifyIngest(in *ingest.Ingester) (int, error) {
	h.ledger.mu.Lock()
	defer h.ledger.mu.Unlock()
	if h.ledger.dup != "" {
		return 0, fmt.Errorf("%s", h.ledger.dup)
	}
	used := in.Used()
	if used[1] != len(h.ledger.slabs) {
		return 0, fmt.Errorf("frontier %d != %d accepted slabs — a shed slab committed or an accepted one vanished",
			used[1], len(h.ledger.slabs))
	}
	verified := 0
	for off, vals := range h.ledger.slabs {
		for r := 0; r < ingestCross; r++ {
			body, _ := json.Marshal(map[string]any{"point": []int{r, off}})
			status, resp, err := h.post("/v1/ingest/point", body)
			if err != nil || status != http.StatusOK {
				return verified, fmt.Errorf("accepted slab at offset %d not queryable: status %d, err %v", off, status, err)
			}
			var pr struct {
				Value float64 `json:"value"`
			}
			if err := json.Unmarshal(resp, &pr); err != nil {
				return verified, err
			}
			want := vals[r]
			if math.Abs(pr.Value-want) > tolerance*math.Max(1, math.Abs(want)) {
				return verified, fmt.Errorf("cell [%d %d] = %v, ingest promised %v", r, off, pr.Value, want)
			}
			verified++
		}
	}
	return verified, nil
}

// answer is the slice of the JSON responses the oracle check needs.
type answer struct {
	Value    float64 `json:"value"`
	Sum      float64 `json:"sum"`
	Degraded bool    `json:"degraded"`
}

const tolerance = 1e-6

// check classifies one response against the expected value.
func check(rep *PhaseReport, status int, body []byte, want float64, got func(answer) float64) {
	rep.Queries++
	if status != http.StatusOK {
		rep.Errors++
		return
	}
	var a answer
	if err := json.Unmarshal(body, &a); err != nil {
		rep.Wrong++ // a 200 that doesn't parse is as bad as a wrong value
		return
	}
	if a.Degraded {
		rep.Degraded++
		return
	}
	g := got(a)
	if math.Abs(g-want) > tolerance*math.Max(1, math.Abs(want)) {
		rep.Wrong++
		return
	}
	rep.OK++
}

func (h *harness) point(rng *rand.Rand, rep *PhaseReport) {
	shape := h.oracle.Shape()
	p := make([]int, len(shape))
	for i, n := range shape {
		p[i] = rng.Intn(n)
	}
	body, _ := json.Marshal(map[string]any{"point": p})
	status, resp, err := h.post("/v1/point", body)
	if err != nil {
		rep.Queries++
		rep.Errors++
		return
	}
	check(rep, status, resp, h.oracle.At(p...), func(a answer) float64 { return a.Value })
}

func (h *harness) rangeSum(rng *rand.Rand, rep *PhaseReport) {
	shape := h.oracle.Shape()
	start := make([]int, len(shape))
	extent := make([]int, len(shape))
	for i, n := range shape {
		start[i] = rng.Intn(n / 2)
		extent[i] = 1 + rng.Intn(n-start[i])
	}
	want := h.oracle.SumRange(start, extent)
	body, _ := json.Marshal(map[string]any{"start": start, "extent": extent})
	status, resp, err := h.post("/v1/rangesum", body)
	if err != nil {
		rep.Queries++
		rep.Errors++
		return
	}
	check(rep, status, resp, want, func(a answer) float64 { return a.Sum })
}

func (h *harness) post(route string, body []byte) (int, []byte, error) {
	resp, err := http.Post(h.base+route, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	return resp.StatusCode, buf, err
}

func (h *harness) healthz() (string, error) {
	resp, err := http.Get(h.base + "/v1/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var hr struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return "", err
	}
	return hr.Status, nil
}

// waitFor polls cond until it holds or the deadline passes; the last
// failure detail is reported on timeout.
func (h *harness) waitFor(d time.Duration, cond func() (bool, string)) error {
	deadline := time.Now().Add(d)
	detail := ""
	for time.Now().Before(deadline) {
		var ok bool
		if ok, detail = cond(); ok {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %s: %s", d, detail)
}

// rotFrames flips one payload byte in n distinct written frames of a
// durable store's data file and returns their block ids.
func rotFrames(path string, blockSize, n int) ([]int, error) {
	frameBytes := 8 * (blockSize + storage.ChecksumOverhead)
	fs, err := storage.OpenFileStore(path, blockSize+storage.ChecksumOverhead)
	if err != nil {
		return nil, err
	}
	chk, err := storage.NewChecksummed(fs)
	if err != nil {
		_ = fs.Close()
		return nil, err
	}
	total, err := fs.NumBlocks()
	if err != nil {
		_ = fs.Close()
		return nil, err
	}
	var ids []int
	for id := 0; id < total && len(ids) < n; id++ {
		if _, written, err := chk.ReadMeta(id); err == nil && written {
			ids = append(ids, id)
		}
	}
	if err := fs.Close(); err != nil {
		return nil, err
	}
	if len(ids) < n {
		return nil, fmt.Errorf("chaos: only %d written frames, need %d", len(ids), n)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	for _, id := range ids {
		off := int64(id)*int64(frameBytes) + 3
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			return nil, err
		}
		b[0] ^= 0x40
		if _, err := f.WriteAt(b[:], off); err != nil {
			return nil, err
		}
	}
	return ids, nil
}
