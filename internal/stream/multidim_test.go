package stream

import (
	"math"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func TestStandardStreamMatchesOfflineTransform(t *testing.T) {
	// Stream a full 4x4xT array slice by slice and compare all finalized
	// coefficients with the offline standard transform.
	crossShape := []int{4, 4}
	T := 16
	nT := 4
	full := dataset.Dense([]int{4, 4, T}, 5)
	s := NewStandard(crossShape, 2, 0) // buffer 4 slices, unbounded synopsis
	for tm := 0; tm < T; tm++ {
		slice := full.SubCopy([]int{0, 0, tm}, []int{4, 4, 1})
		flat := ndarray.FromSlice(slice.Data(), 4, 4)
		if err := s.AddSlice(flat); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	want := wavelet.TransformStandard(full)
	entries := map[CoefMD]float64{}
	for _, e := range s.Synopsis().Entries() {
		entries[e.Key] = e.Value
	}
	if len(entries) != full.Size() {
		t.Fatalf("finalized %d coefficients, want %d", len(entries), full.Size())
	}
	checked := 0
	want.Each(func(coords []int, v float64) {
		cross := coords[0]*4 + coords[1]
		var key CoefMD
		if coords[2] == 0 {
			key = CoefMD{Cross: cross, Time: Coef1D{J: nT, K: 0, Avg: true}}
		} else {
			j, k := haar.LevelPos(nT, coords[2])
			key = CoefMD{Cross: cross, Time: Coef1D{J: j, K: k}}
		}
		got, ok := entries[key]
		if !ok {
			t.Fatalf("missing coefficient for coords %v (key %+v)", coords, key)
		}
		if math.Abs(got-v) > tol {
			t.Fatalf("coords %v: %g vs %g", coords, got, v)
		}
		checked++
	})
	if checked != full.Size() {
		t.Errorf("checked %d coefficients", checked)
	}
}

func TestStandardStreamCrestMemory(t *testing.T) {
	// The crest must hold about crossSize * log(T/B) coefficients (R4).
	crossShape := []int{4, 4}
	s := NewStandard(crossShape, 1, 8)
	T := 64
	for tm := 0; tm < T; tm++ {
		slice := ndarray.New(4, 4)
		slice.Fill(float64(tm))
		if err := s.AddSlice(slice); err != nil {
			t.Fatal(err)
		}
	}
	mem := s.CrestMemory()
	crossSize := 16
	logT := 5 // log2(64/2)
	if mem < crossSize || mem > 2*crossSize*logT {
		t.Errorf("crest memory %d outside expected band [%d, %d]", mem, crossSize, 2*crossSize*logT)
	}
}

func TestStandardStreamRejectsBadSlice(t *testing.T) {
	s := NewStandard([]int{4, 4}, 1, 0)
	if err := s.AddSlice(ndarray.New(4)); err == nil {
		t.Error("wrong dims accepted")
	}
	if err := s.AddSlice(ndarray.New(4, 8)); err == nil {
		t.Error("wrong extent accepted")
	}
}

func TestStandardStreamFinishRejectsPartialBuffer(t *testing.T) {
	s := NewStandard([]int{4}, 2, 0)
	if err := s.AddSlice(ndarray.New(4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(); err == nil {
		t.Error("partial buffer accepted")
	}
}

func TestNonStandardStreamMatchesOfflineTransform(t *testing.T) {
	// Feed 4 hypercubes of 8x8 as z-ordered 2x2 chunks; every spatial detail
	// must equal the hypercube's offline non-standard transform and the time
	// coefficients must equal the Haar transform of the averages.
	n, d, m := 3, 2, 1
	hypers := 4
	s := NewNonStandard(n, d, m, 0)
	var avgs []float64
	for h := 0; h < hypers; h++ {
		cube := dataset.Dense([]int{8, 8}, int64(h+1))
		avgs = append(avgs, cube.Sum()/64)
		hat := wavelet.TransformNonStandard(cube)
		// Feed chunks in the maintainer's expected z-order.
		for s.chunksIn != 0 || h == s.hyper {
			pos := s.NextChunkPos()
			chunk := cube.SubCopy([]int{pos[0] * 2, pos[1] * 2}, []int{2, 2})
			if err := s.AddChunk(chunk); err != nil {
				t.Fatal(err)
			}
			if s.hyper != h {
				break
			}
		}
		// Verify this hypercube's details against the offline transform.
		entries := map[CoefMD]float64{}
		for _, e := range s.Synopsis().Entries() {
			entries[e.Key] = e.Value
		}
		bad := 0
		hat.Each(func(coords []int, v float64) {
			if coords[0] == 0 && coords[1] == 0 {
				return // the average went to the time chain
			}
			flat := coords[0]*8 + coords[1]
			got, ok := entries[CoefMD{Cross: flat, Time: Coef1D{J: h, K: -1}}]
			if !ok || math.Abs(got-v) > tol {
				bad++
			}
		})
		if bad != 0 {
			t.Fatalf("hypercube %d: %d details differ", h, bad)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	// Time coefficients = Haar transform of the averages vector.
	avgHat := haar.Transform(avgs)
	entries := map[CoefMD]float64{}
	for _, e := range s.Synopsis().Entries() {
		entries[e.Key] = e.Value
	}
	nH := 2 // log2(4 hypercubes)
	for j := 1; j <= nH; j++ {
		for k := 0; k < 1<<uint(nH-j); k++ {
			got, ok := entries[CoefMD{Cross: -1, Time: Coef1D{J: j, K: k}}]
			if !ok || math.Abs(got-avgHat[haar.Index(nH, j, k)]) > tol {
				t.Fatalf("time coefficient w[%d,%d] wrong (got %g ok=%v)", j, k, got, ok)
			}
		}
	}
	if got, ok := entries[CoefMD{Cross: -1, Time: Coef1D{J: nH, K: 0, Avg: true}}]; !ok || math.Abs(got-avgHat[0]) > tol {
		t.Fatalf("global average wrong (got %g ok=%v)", got, ok)
	}
}

func TestNonStandardStreamCrestMemoryBound(t *testing.T) {
	// R5: crest memory ~ (2^d-1) log(N/M) + log(T/N), independent of N^(d-1).
	s := NewNonStandard(4, 2, 1, 8)
	cube := dataset.Dense([]int{16, 16}, 3)
	for h := 0; h < 8; h++ {
		for c := 0; c < 64; c++ {
			pos := s.NextChunkPos()
			chunk := cube.SubCopy([]int{pos[0] * 2, pos[1] * 2}, []int{2, 2})
			if err := s.AddChunk(chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	mem := s.CrestMemory()
	// (2^2)(4-1) + log2(8) = 12 + 3 = 15-ish.
	if mem > 32 {
		t.Errorf("crest memory %d exceeds the R5 bound scale", mem)
	}
}

func TestNonStandardStreamRejectsBadChunk(t *testing.T) {
	s := NewNonStandard(3, 2, 1, 0)
	if err := s.AddChunk(ndarray.New(2)); err == nil {
		t.Error("wrong dims accepted")
	}
	if err := s.AddChunk(ndarray.New(4, 4)); err == nil {
		t.Error("wrong edge accepted")
	}
}

func TestNonStandardStreamFinishRejectsPartialHypercube(t *testing.T) {
	s := NewNonStandard(3, 2, 1, 0)
	if err := s.AddChunk(ndarray.New(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(); err == nil {
		t.Error("partial hypercube accepted")
	}
}
