// Package stream implements wavelet synopsis maintenance over data streams
// in the time-series model (paper §5.3):
//
//   - Baseline: the Gilbert et al. [5] approach, which keeps the O(log N)
//     crest coefficients that can still change and spends O(log N)
//     coefficient updates per arriving item;
//   - Buffered (Result 3): collect B items, transform them in memory, SHIFT
//     the B-1 final details out and SPLIT the buffer average onto the crest,
//     cutting per-item crest updates to O((1/B) log(N/B)) at the price of B
//     extra memory;
//   - Standard (Result 4): a d-dimensional stream growing along time under
//     the standard decomposition, requiring a crest chain per cross-section
//     basis function (the O(N^(d-1) log T) memory the paper proves
//     necessary);
//   - NonStandard (Result 5): the same stream under the non-standard
//     decomposition, seen as a sequence of N-edge hypercubes whose averages
//     form a one-dimensional stream; with z-ordered chunk arrivals the
//     memory drops to O(K + M^d + (2^d-1) log(N/M) + log(T/N)).
//
// All maintainers share a cost model: CrestOps counts updates to
// coefficients that can still change (the quantity Figure 14-style plots
// report) and TotalOps additionally counts work on finalized coefficients.
package stream

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/synopsis"
)

// Coef1D identifies a finalized coefficient of a growing one-dimensional
// transform: the detail w[J,K], or the average over [0, 2^J) when Avg is
// set (emitted by Finish).
type Coef1D struct {
	J   int
	K   int
	Avg bool
}

// Chain folds a left-to-right stream of level-base averages into finalized
// higher-level detail coefficients using O(log) memory: for each level it
// holds at most one pending left half. This is the crest of §5.3 in
// carry-chain form.
type Chain struct {
	base    int
	pending []pendingHalf
	emit    func(c Coef1D, value float64)
	pushes  int
}

type pendingHalf struct {
	left float64
	has  bool
}

// NewChain creates a chain consuming averages of dyadic blocks of size
// 2^base; emit receives every finalized detail (and the averages flushed by
// Finish).
func NewChain(base int, emit func(c Coef1D, value float64)) *Chain {
	return &Chain{base: base, emit: emit}
}

// Push delivers the average of the next level-base block and returns the
// number of crest coefficient updates performed (the cascade depth).
func (c *Chain) Push(avg float64) int {
	k := c.pushes
	c.pushes++
	ops := 0
	u := avg
	for lvl := 0; ; lvl++ {
		if lvl == len(c.pending) {
			c.pending = append(c.pending, pendingHalf{})
		}
		p := &c.pending[lvl]
		ops++
		if !p.has {
			p.left = u
			p.has = true
			return ops
		}
		j := c.base + lvl + 1
		c.emit(Coef1D{J: j, K: k >> uint(lvl+1)}, (p.left-u)/2)
		u = (p.left + u) / 2
		p.has = false
	}
}

// Levels returns the current number of open crest levels.
func (c *Chain) Levels() int { return len(c.pending) }

// Pushes returns how many level-base averages have been consumed.
func (c *Chain) Pushes() int { return c.pushes }

// Finish emits the open left-halves as partial averages, topmost last. For
// a stream of exactly 2^q blocks only the overall average remains open.
func (c *Chain) Finish() {
	for lvl := len(c.pending) - 1; lvl >= 0; lvl-- {
		if c.pending[lvl].has {
			c.emit(Coef1D{J: c.base + lvl, K: 0, Avg: true}, c.pending[lvl].left)
			c.pending[lvl].has = false
		}
	}
}

// Costs aggregates the maintenance cost counters.
type Costs struct {
	Items    int64 // items consumed
	CrestOps int64 // updates to still-mutable (crest) coefficients
	TotalOps int64 // all coefficient operations, including finalizations
}

// PerItemCrest returns CrestOps/Items.
func (c Costs) PerItemCrest() float64 {
	if c.Items == 0 {
		return 0
	}
	return float64(c.CrestOps) / float64(c.Items)
}

// PerItemTotal returns TotalOps/Items.
func (c Costs) PerItemTotal() float64 {
	if c.Items == 0 {
		return 0
	}
	return float64(c.TotalOps) / float64(c.Items)
}

// Baseline maintains a best-K synopsis of a 1-d stream the Gilbert et al.
// way: every arriving item updates the whole crest (all coefficients whose
// support covers the current position and can still change).
type Baseline struct {
	chain *Chain
	syn   *synopsis.Synopsis[Coef1D]
	costs Costs
}

// NewBaseline creates the baseline maintainer with capacity k (0 =
// unbounded, for exact replay).
func NewBaseline(k int) *Baseline {
	b := &Baseline{syn: synopsis.New[Coef1D](k)}
	b.chain = NewChain(0, func(c Coef1D, v float64) {
		b.offer(c, v)
	})
	return b
}

func (b *Baseline) offer(c Coef1D, v float64) {
	b.costs.TotalOps++
	support := float64(int64(1) << uint(c.J))
	b.syn.Offer(c, v, v*v*support)
}

// Add consumes one stream item.
func (b *Baseline) Add(v float64) {
	b.costs.Items++
	// Gilbert et al. update every coefficient on the path to the root: the
	// crest has one mutable coefficient per open level plus the running
	// average.
	depth := b.chain.Levels() + 1
	b.costs.CrestOps += int64(depth)
	b.costs.TotalOps += int64(depth)
	b.chain.Push(v)
}

// Finish flushes the open averages into the synopsis.
func (b *Baseline) Finish() {
	b.chain.Finish()
}

// Synopsis returns the maintained best-K synopsis.
func (b *Baseline) Synopsis() *synopsis.Synopsis[Coef1D] { return b.syn }

// Costs returns the accumulated cost counters.
func (b *Baseline) Costs() Costs { return b.costs }

// Buffered maintains a best-K synopsis with a B-item buffer (Result 3):
// each full buffer is transformed in memory (its details are final
// immediately — the SHIFT) and only the buffer average climbs the crest
// (the SPLIT).
type Buffered struct {
	bufBits int
	buf     []float64
	chain   *Chain
	syn     *synopsis.Synopsis[Coef1D]
	costs   Costs
	buffers int
}

// NewBuffered creates the Result-3 maintainer with buffer size B = 2^bufBits
// and synopsis capacity k (0 = unbounded).
func NewBuffered(k, bufBits int) *Buffered {
	if bufBits < 0 {
		panic(fmt.Sprintf("stream: buffer bits %d", bufBits))
	}
	b := &Buffered{
		bufBits: bufBits,
		buf:     make([]float64, 0, 1<<uint(bufBits)),
		syn:     synopsis.New[Coef1D](k),
	}
	b.chain = NewChain(bufBits, func(c Coef1D, v float64) {
		b.offer(c, v)
	})
	return b
}

func (b *Buffered) offer(c Coef1D, v float64) {
	b.costs.TotalOps++
	support := float64(int64(1) << uint(c.J))
	b.syn.Offer(c, v, v*v*support)
}

// Add consumes one stream item.
func (b *Buffered) Add(v float64) {
	b.costs.Items++
	b.buf = append(b.buf, v)
	if len(b.buf) < cap(b.buf) {
		return
	}
	b.flush()
}

func (b *Buffered) flush() {
	B := len(b.buf)
	if B == 0 {
		return
	}
	// In-memory transform of the buffer: B-1 details finalize right away.
	hat := haar.Transform(b.buf)
	b.costs.TotalOps += int64(B) // transform + shift placement
	bufIdx := b.buffers
	for idx := 1; idx < B; idx++ {
		j, k := haar.LevelPos(b.bufBits, idx)
		b.offer(Coef1D{J: j, K: bufIdx<<uint(b.bufBits-j) + k}, hat[idx])
	}
	// Only the average climbs the crest.
	ops := b.chain.Push(hat[0])
	b.costs.CrestOps += int64(ops)
	b.buffers++
	b.buf = b.buf[:0]
}

// Finish transforms any partial buffer (padding with zeros would change the
// stream; instead the caller is expected to stop at a buffer boundary) and
// flushes the crest. A non-empty partial buffer is an error.
func (b *Buffered) Finish() error {
	if len(b.buf) != 0 {
		return fmt.Errorf("stream: %d items buffered; stop at a multiple of B=%d", len(b.buf), cap(b.buf))
	}
	b.chain.Finish()
	return nil
}

// Synopsis returns the maintained best-K synopsis.
func (b *Buffered) Synopsis() *synopsis.Synopsis[Coef1D] { return b.syn }

// Costs returns the accumulated cost counters.
func (b *Buffered) Costs() Costs { return b.costs }
