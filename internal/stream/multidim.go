package stream

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/synopsis"
	"github.com/shiftsplit/shiftsplit/internal/transform"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
	"github.com/shiftsplit/shiftsplit/internal/zorder"
)

// CoefMD identifies a finalized coefficient of a multidimensional stream
// transform. Cross is the row-major index of the cross-section basis
// combination (standard form) or of the within-hypercube coefficient
// (non-standard form); Time carries the 1-d time identity.
type CoefMD struct {
	Cross int
	Time  Coef1D
}

// Standard maintains a best-K standard-form synopsis of a d-dimensional
// stream growing along its last (time) dimension (Result 4). Data arrives
// as full cross-section slices; bufBits slices are buffered, transformed,
// and merged: coefficients that are details along time finalize
// immediately, while each cross-basis time-average climbs a per-cross
// crest chain — all prod(crossShape) of them, which is exactly the
// O(N^(d-1) log T) memory cost the paper proves.
type Standard struct {
	crossShape []int
	bufBits    int
	buf        *ndarray.Array
	filled     int
	buffers    int
	chains     []*Chain
	syn        *synopsis.Synopsis[CoefMD]
	costs      Costs
}

// NewStandard creates a Result-4 maintainer. crossShape lists the fixed
// dimensions (each a power of two); time slices are buffered in groups of
// 2^bufBits; k bounds the synopsis (0 = unbounded).
func NewStandard(crossShape []int, bufBits, k int) *Standard {
	for _, s := range crossShape {
		if !bitutil.IsPow2(s) {
			panic(fmt.Sprintf("stream: cross extent %d is not a power of two", s))
		}
	}
	crossSize := 1
	for _, s := range crossShape {
		crossSize *= s
	}
	bufShape := append(append([]int(nil), crossShape...), 1<<uint(bufBits))
	s := &Standard{
		crossShape: append([]int(nil), crossShape...),
		bufBits:    bufBits,
		buf:        ndarray.New(bufShape...),
		chains:     make([]*Chain, crossSize),
		syn:        synopsis.New[CoefMD](k),
	}
	for i := range s.chains {
		cross := i
		s.chains[i] = NewChain(bufBits, func(c Coef1D, v float64) {
			s.offer(CoefMD{Cross: cross, Time: c}, v)
		})
	}
	return s
}

// crossSupport returns the support volume of a cross-basis combination
// (the product of per-dimension support lengths of each 1-d index).
func (s *Standard) crossSupport(cross int) float64 {
	vol := 1.0
	for i := len(s.crossShape) - 1; i >= 0; i-- {
		idx := cross % s.crossShape[i]
		cross /= s.crossShape[i]
		n := bitutil.Log2(s.crossShape[i])
		vol *= float64(haar.Support(n, idx).Len())
	}
	return vol
}

func (s *Standard) offer(c CoefMD, v float64) {
	s.costs.TotalOps++
	support := s.crossSupport(c.Cross) * float64(int64(1)<<uint(c.Time.J))
	s.syn.Offer(c, v, v*v*support)
}

// AddSlice consumes one time slice of the stream (shape = crossShape).
func (s *Standard) AddSlice(slice *ndarray.Array) error {
	if slice.Dims() != len(s.crossShape) {
		return fmt.Errorf("stream: slice has %d dims, want %d", slice.Dims(), len(s.crossShape))
	}
	for i, e := range s.crossShape {
		if slice.Extent(i) != e {
			return fmt.Errorf("stream: slice shape %v, want %v", slice.Shape(), s.crossShape)
		}
	}
	s.costs.Items += int64(slice.Size())
	d := len(s.crossShape)
	start := make([]int, d+1)
	start[d] = s.filled
	shape := append(append([]int(nil), s.crossShape...), 1)
	sub := ndarray.FromSlice(slice.Data(), shape...)
	s.buf.SubPaste(sub, start)
	s.filled++
	if s.filled == s.buf.Extent(d) {
		s.flush()
	}
	return nil
}

func (s *Standard) flush() {
	hat := wavelet.TransformStandard(s.buf)
	d := len(s.crossShape)
	B := 1 << uint(s.bufBits)
	s.costs.TotalOps += int64(hat.Size())
	bufIdx := s.buffers
	hat.Each(func(coords []int, v float64) {
		cross := 0
		for i := 0; i < d; i++ {
			cross = cross*s.crossShape[i] + coords[i]
		}
		it := coords[d]
		if it >= 1 {
			j, k := haar.LevelPos(s.bufBits, it)
			s.offer(CoefMD{Cross: cross, Time: Coef1D{J: j, K: bufIdx<<uint(s.bufBits-j) + k}}, v)
			return
		}
		ops := s.chains[cross].Push(v)
		s.costs.CrestOps += int64(ops)
	})
	_ = B
	s.filled = 0
	s.buffers++
}

// Finish flushes every cross chain. The stream must stop at a buffer
// boundary.
func (s *Standard) Finish() error {
	if s.filled != 0 {
		return fmt.Errorf("stream: %d slices buffered; stop at a multiple of %d", s.filled, s.buf.Extent(len(s.crossShape)))
	}
	for _, c := range s.chains {
		c.Finish()
	}
	return nil
}

// CrestMemory returns the number of crest coefficients currently held: the
// Result-4 memory term O(N^(d-1) log T).
func (s *Standard) CrestMemory() int {
	total := 0
	for _, c := range s.chains {
		total += c.Levels()
	}
	return total
}

// Synopsis returns the maintained best-K synopsis.
func (s *Standard) Synopsis() *synopsis.Synopsis[CoefMD] { return s.syn }

// Costs returns the accumulated cost counters.
func (s *Standard) Costs() Costs { return s.costs }

// NonStandard maintains a best-K non-standard synopsis of a d-dimensional
// stream growing along time (Result 5). The stream is seen as a sequence of
// cubic hypercubes of edge 2^n; each hypercube arrives as chunks of edge
// 2^m in z-order (the access-pattern assumption of §5.1 that the paper
// carries over), is folded through a (2^d - 1) log(N/M)-coefficient crest,
// and its average joins a 1-d chain over hypercube index — log(T/N) more
// coefficients.
type NonStandard struct {
	n, d, m   int
	crest     *transform.Crest
	timeChain *Chain
	syn       *synopsis.Synopsis[CoefMD]
	costs     Costs
	hyper     int // current hypercube index
	chunksIn  int // chunks received for the current hypercube
	chunkSeq  [][]int
}

// NewNonStandard creates a Result-5 maintainer for hypercubes of edge 2^n
// in d dimensions, fed by chunks of edge 2^m, with synopsis capacity k.
func NewNonStandard(n, d, m, k int) *NonStandard {
	if m > n {
		panic(fmt.Sprintf("stream: chunk level %d above hypercube level %d", m, n))
	}
	s := &NonStandard{n: n, d: d, m: m, syn: synopsis.New[CoefMD](k)}
	s.timeChain = NewChain(0, func(c Coef1D, v float64) {
		s.offerTime(c, v)
	})
	s.rebuildCrest()
	// Precompute the z-order chunk sequence for one hypercube.
	side := 1 << uint(n-m)
	zorder.Curve(d, side, func(pos []int) {
		s.chunkSeq = append(s.chunkSeq, append([]int(nil), pos...))
	})
	return s
}

func (s *NonStandard) rebuildCrest() {
	hyper := s.hyper
	s.crest = transform.NewCrest(s.d, s.n, s.m, func(coords []int, v float64) error {
		s.offerSpatial(hyper, coords, v)
		return nil
	})
}

func (s *NonStandard) offerSpatial(hyper int, coords []int, v float64) {
	origin := true
	for _, c := range coords {
		if c != 0 {
			origin = false
			break
		}
	}
	if origin {
		// The hypercube average: push it onto the time chain instead of the
		// synopsis.
		ops := s.timeChain.Push(v)
		s.costs.CrestOps += int64(ops)
		return
	}
	s.costs.TotalOps++
	j, _, _ := wavelet.NonStdLevel(s.n, coords)
	support := float64(bitutil.IntPow(1<<uint(j), s.d))
	flat := 0
	edge := 1 << uint(s.n)
	for _, c := range coords {
		flat = flat*edge + c
	}
	s.syn.Offer(CoefMD{Cross: flat, Time: Coef1D{J: hyper, K: -1}}, v, v*v*support)
}

func (s *NonStandard) offerTime(c Coef1D, v float64) {
	s.costs.TotalOps++
	// Support in cells: 2^(J) hypercubes of N^d cells each.
	support := float64(int64(1)<<uint(c.J)) * float64(bitutil.IntPow(1<<uint(s.n), s.d))
	s.syn.Offer(CoefMD{Cross: -1, Time: c}, v, v*v*support)
}

// NextChunkPos returns the position (in chunk units) the maintainer expects
// next within the current hypercube.
func (s *NonStandard) NextChunkPos() []int {
	return append([]int(nil), s.chunkSeq[s.chunksIn]...)
}

// AddChunk consumes the next z-ordered chunk (a cube of edge 2^m) of the
// current hypercube.
func (s *NonStandard) AddChunk(chunk *ndarray.Array) error {
	edge := 1 << uint(s.m)
	if chunk.Dims() != s.d {
		return fmt.Errorf("stream: chunk has %d dims, want %d", chunk.Dims(), s.d)
	}
	for i := 0; i < s.d; i++ {
		if chunk.Extent(i) != edge {
			return fmt.Errorf("stream: chunk shape %v, want edge %d", chunk.Shape(), edge)
		}
	}
	s.costs.Items += int64(chunk.Size())
	s.costs.TotalOps += int64(chunk.Size())
	pos := s.chunkSeq[s.chunksIn]
	bHat := wavelet.TransformNonStandard(chunk)
	hyper := s.hyper
	// Details of the chunk subtree finalize immediately (the SHIFT).
	shape := make([]int, s.d)
	for i := range shape {
		shape[i] = 1 << uint(s.n)
	}
	core.EachShiftNonStandard(shape, s.m, pos, bHat, func(coords []int, v float64) {
		s.offerSpatial(hyper, coords, v)
	})
	origin := make([]int, s.d)
	if err := s.crest.Push(0, append([]int(nil), pos...), bHat.At(origin...)); err != nil {
		return err
	}
	s.chunksIn++
	if s.chunksIn == len(s.chunkSeq) {
		s.chunksIn = 0
		s.hyper++
		s.rebuildCrest()
	}
	return nil
}

// Finish flushes the time chain. The stream must stop at a hypercube
// boundary.
func (s *NonStandard) Finish() error {
	if s.chunksIn != 0 {
		return fmt.Errorf("stream: %d chunks into a hypercube; stop at a boundary", s.chunksIn)
	}
	s.timeChain.Finish()
	return nil
}

// CrestMemory returns the coefficients currently buffered outside the
// synopsis: the spatial crest plus the time chain (the Result-5 memory
// term).
func (s *NonStandard) CrestMemory() int {
	spatial := (bitutil.Pow2(s.d)) * (s.n - s.m)
	return spatial + s.timeChain.Levels()
}

// Synopsis returns the maintained best-K synopsis.
func (s *NonStandard) Synopsis() *synopsis.Synopsis[CoefMD] { return s.syn }

// Costs returns the accumulated cost counters.
func (s *NonStandard) Costs() Costs { return s.costs }
