package stream

import (
	"math"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func TestStandardStream1DCross(t *testing.T) {
	// Degenerate d=2 stream with a 2-wide cross-section.
	full := dataset.Dense([]int{2, 8}, 9)
	s := NewStandard([]int{2}, 1, 0)
	for tm := 0; tm < 8; tm++ {
		slice := ndarray.FromSlice([]float64{full.At(0, tm), full.At(1, tm)}, 2)
		if err := s.AddSlice(slice); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	want := wavelet.TransformStandard(full)
	entries := map[CoefMD]float64{}
	for _, e := range s.Synopsis().Entries() {
		entries[e.Key] = e.Value
	}
	if len(entries) != 16 {
		t.Fatalf("finalized %d coefficients, want 16", len(entries))
	}
	want.Each(func(coords []int, v float64) {
		var key CoefMD
		if coords[1] == 0 {
			key = CoefMD{Cross: coords[0], Time: Coef1D{J: 3, K: 0, Avg: true}}
		} else {
			j, k := haar.LevelPos(3, coords[1])
			key = CoefMD{Cross: coords[0], Time: Coef1D{J: j, K: k}}
		}
		got, ok := entries[key]
		if !ok || math.Abs(got-v) > 1e-9 {
			t.Fatalf("coords %v: got %g (ok=%v) want %g", coords, got, ok, v)
		}
	})
}

func TestNonStandardStreamChunkEqualsHypercube(t *testing.T) {
	// m == n: one chunk per hypercube; the crest degenerates to nothing and
	// only the time chain remains.
	s := NewNonStandard(2, 2, 2, 0)
	cubes := []*ndarray.Array{dataset.Dense([]int{4, 4}, 1), dataset.Dense([]int{4, 4}, 2)}
	for _, cube := range cubes {
		if err := s.AddChunk(cube); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	entries := map[CoefMD]float64{}
	for _, e := range s.Synopsis().Entries() {
		entries[e.Key] = e.Value
	}
	for h, cube := range cubes {
		hat := wavelet.TransformNonStandard(cube)
		bad := 0
		hat.Each(func(coords []int, v float64) {
			if coords[0] == 0 && coords[1] == 0 {
				return
			}
			flat := coords[0]*4 + coords[1]
			got, ok := entries[CoefMD{Cross: flat, Time: Coef1D{J: h, K: -1}}]
			if !ok || math.Abs(got-v) > 1e-9 {
				bad++
			}
		})
		if bad != 0 {
			t.Fatalf("hypercube %d: %d details wrong", h, bad)
		}
	}
	// Time chain over 2 averages: one detail + the running average.
	avg0 := cubes[0].Sum() / 16
	avg1 := cubes[1].Sum() / 16
	if got := entries[CoefMD{Cross: -1, Time: Coef1D{J: 1, K: 0}}]; math.Abs(got-(avg0-avg1)/2) > 1e-9 {
		t.Errorf("time detail = %g, want %g", got, (avg0-avg1)/2)
	}
	if got := entries[CoefMD{Cross: -1, Time: Coef1D{J: 1, K: 0, Avg: true}}]; math.Abs(got-(avg0+avg1)/2) > 1e-9 {
		t.Errorf("time average = %g, want %g", got, (avg0+avg1)/2)
	}
}

func TestBufferedSingleItemBufferMatchesBaselineCosts(t *testing.T) {
	// B = 1: every "buffer" is one item; crest cost per item equals the
	// baseline's amortized cascade depth (~2), below the log-N crest walk.
	data := dataset.RandomWalk(1<<12, 3)
	buf := NewBuffered(0, 0)
	for _, v := range data {
		buf.Add(v)
	}
	if err := buf.Finish(); err != nil {
		t.Fatal(err)
	}
	if c := buf.Costs().PerItemCrest(); c > 2.5 {
		t.Errorf("B=1 crest cost %g, want ~2 (amortized carry)", c)
	}
}

func TestChainLevelsGrowLogarithmically(t *testing.T) {
	ch := NewChain(0, func(Coef1D, float64) {})
	for i := 0; i < 1<<10; i++ {
		ch.Push(1)
	}
	// After 2^q pushes the chain holds q cleared pair slots plus the open
	// slot carrying the global average: q+1 levels.
	if got := ch.Levels(); got != 11 {
		t.Errorf("after 2^10 pushes chain has %d levels, want 11", got)
	}
	if ch.Pushes() != 1024 {
		t.Errorf("Pushes = %d", ch.Pushes())
	}
}

func TestStandardStreamCostsAccumulate(t *testing.T) {
	s := NewStandard([]int{4}, 2, 8)
	for tm := 0; tm < 16; tm++ {
		sl := ndarray.New(4)
		sl.Fill(float64(tm))
		if err := s.AddSlice(sl); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Costs()
	if c.Items != 64 {
		t.Errorf("Items = %d, want 64 cells", c.Items)
	}
	if c.TotalOps == 0 || c.CrestOps == 0 {
		t.Error("costs not accumulated")
	}
}

func TestBaselineNonPowerOfTwoLength(t *testing.T) {
	// The baseline handles arbitrary lengths: coefficients for complete
	// dyadic blocks finalize, the rest emerge as partial averages at Finish.
	data := dataset.RandomWalk(11, 5)
	b := NewBaseline(0)
	for _, v := range data {
		b.Add(v)
	}
	b.Finish()
	entries := map[Coef1D]float64{}
	for _, e := range b.Synopsis().Entries() {
		entries[e.Key] = e.Value
	}
	// Finalized details: levels over complete pairs. For 11 items the first
	// 8 form a full level-3 tree, items 8-9 a level-1 pair.
	hat8 := haar.Transform(data[:8])
	for j := 1; j <= 3; j++ {
		for k := 0; k < 1<<uint(3-j); k++ {
			got, ok := entries[Coef1D{J: j, K: k}]
			if !ok || math.Abs(got-hat8[haar.Index(3, j, k)]) > 1e-9 {
				t.Fatalf("w[%d,%d] missing or wrong", j, k)
			}
		}
	}
	// The partial averages cover [0,8) and [8,10) plus the lone item 10.
	if _, ok := entries[Coef1D{J: 3, K: 0, Avg: true}]; !ok {
		t.Error("missing level-3 partial average")
	}
	if _, ok := entries[Coef1D{J: 1, K: 0, Avg: true}]; !ok {
		t.Error("missing level-1 partial average")
	}
	if _, ok := entries[Coef1D{J: 0, K: 0, Avg: true}]; !ok {
		t.Error("missing level-0 partial average")
	}
}
