package stream

import (
	"math"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/haar"
)

const tol = 1e-9

func TestChainMatchesOfflineTransform(t *testing.T) {
	for _, n := range []int{1, 3, 6, 10} {
		data := dataset.RandomWalk(1<<uint(n), int64(n))
		got := map[Coef1D]float64{}
		ch := NewChain(0, func(c Coef1D, v float64) { got[c] = v })
		for _, v := range data {
			ch.Push(v)
		}
		ch.Finish()
		hat := haar.Transform(data)
		// Details.
		for j := 1; j <= n; j++ {
			for k := 0; k < 1<<uint(n-j); k++ {
				want := hat[haar.Index(n, j, k)]
				gv, ok := got[Coef1D{J: j, K: k}]
				if !ok {
					t.Fatalf("n=%d: missing w[%d,%d]", n, j, k)
				}
				if math.Abs(gv-want) > tol {
					t.Fatalf("n=%d w[%d,%d] = %g, want %g", n, j, k, gv, want)
				}
			}
		}
		// The average.
		gv, ok := got[Coef1D{J: n, K: 0, Avg: true}]
		if !ok || math.Abs(gv-hat[0]) > tol {
			t.Fatalf("n=%d average = %g (%v), want %g", n, gv, ok, hat[0])
		}
	}
}

func TestChainPartialLengthEmitsOpenAverages(t *testing.T) {
	// 6 items = blocks of 4 + 2: finish should emit an average of the first
	// 4 (level 2) and of the next 2 (level 1).
	ch := NewChain(0, func(c Coef1D, v float64) {})
	var avgs []Coef1D
	ch.emit = func(c Coef1D, v float64) {
		if c.Avg {
			avgs = append(avgs, c)
		}
	}
	for i := 0; i < 6; i++ {
		ch.Push(float64(i))
	}
	ch.Finish()
	if len(avgs) != 2 || avgs[0].J != 2 || avgs[1].J != 1 {
		t.Errorf("open averages = %v", avgs)
	}
}

func TestBaselineAndBufferedAgree(t *testing.T) {
	data := dataset.RandomWalk(1<<10, 42)
	base := NewBaseline(0)
	for _, v := range data {
		base.Add(v)
	}
	base.Finish()
	for _, bufBits := range []int{0, 2, 4, 6} {
		buf := NewBuffered(0, bufBits)
		for _, v := range data {
			buf.Add(v)
		}
		if err := buf.Finish(); err != nil {
			t.Fatal(err)
		}
		be := map[Coef1D]float64{}
		for _, e := range base.Synopsis().Entries() {
			be[e.Key] = e.Value
		}
		if buf.Synopsis().Len() != len(be) {
			t.Fatalf("bufBits=%d: %d entries vs baseline %d", bufBits, buf.Synopsis().Len(), len(be))
		}
		for _, e := range buf.Synopsis().Entries() {
			want, ok := be[e.Key]
			if !ok {
				t.Fatalf("bufBits=%d: extra key %+v", bufBits, e.Key)
			}
			if math.Abs(e.Value-want) > tol {
				t.Fatalf("bufBits=%d key %+v: %g vs %g", bufBits, e.Key, e.Value, want)
			}
		}
	}
}

func TestBufferedReducesCrestCost(t *testing.T) {
	// Figure 14's shape: per-item crest cost falls roughly like
	// log(N/B)/B as the buffer grows; the baseline pays ~log N.
	data := dataset.RandomWalk(1<<14, 7)
	base := NewBaseline(64)
	for _, v := range data {
		base.Add(v)
	}
	baseCost := base.Costs().PerItemCrest()
	if baseCost < 10 { // log2(16384) = 14ish
		t.Errorf("baseline per-item crest cost %g suspiciously low", baseCost)
	}
	prev := baseCost
	for _, bufBits := range []int{1, 3, 5, 7} {
		buf := NewBuffered(64, bufBits)
		for _, v := range data {
			buf.Add(v)
		}
		cost := buf.Costs().PerItemCrest()
		if cost >= prev {
			t.Errorf("bufBits=%d: crest cost %g did not fall below %g", bufBits, cost, prev)
		}
		prev = cost
	}
	if prev > 0.2 {
		t.Errorf("largest buffer still costs %g crest ops/item", prev)
	}
}

func TestBufferedFinishRejectsPartialBuffer(t *testing.T) {
	buf := NewBuffered(0, 3)
	for i := 0; i < 5; i++ {
		buf.Add(1)
	}
	if err := buf.Finish(); err == nil {
		t.Error("partial buffer accepted")
	}
}

func TestBaselineTopKIsTrueTopK(t *testing.T) {
	data := dataset.RandomWalk(1<<8, 9)
	n := 8
	k := 10
	b := NewBaseline(k)
	for _, v := range data {
		b.Add(v)
	}
	b.Finish()
	// Offline: energies of all coefficients.
	hat := haar.Transform(data)
	type ce struct {
		e float64
	}
	var energies []float64
	for idx := 0; idx < len(hat); idx++ {
		sup := float64(haar.Support(n, idx).Len())
		energies = append(energies, hat[idx]*hat[idx]*sup)
	}
	// k-th largest energy.
	sorted := append([]float64(nil), energies...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	threshold := sorted[k-1]
	for _, e := range b.Synopsis().Entries() {
		if e.Weight < threshold-tol {
			t.Fatalf("retained weight %g below true top-%d threshold %g", e.Weight, k, threshold)
		}
	}
	_ = ce{}
}

func TestCostsPerItemHelpers(t *testing.T) {
	c := Costs{Items: 4, CrestOps: 8, TotalOps: 12}
	if c.PerItemCrest() != 2 || c.PerItemTotal() != 3 {
		t.Error("per-item helpers wrong")
	}
	var zero Costs
	if zero.PerItemCrest() != 0 || zero.PerItemTotal() != 0 {
		t.Error("zero-item helpers should be 0")
	}
}
