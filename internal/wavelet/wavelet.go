// Package wavelet implements the two multidimensional Haar decompositions
// used in the paper (§2.1, Appendix B):
//
//   - the standard form, obtained by running the complete one-dimensional
//     transform along each dimension in turn; and
//   - the non-standard form, which after each level of pairwise
//     averaging/differencing along all dimensions recurses only into the
//     hypercube of averages.
//
// Both forms store coefficients in the Mallat subband layout, which for one
// dimension coincides with the error-tree order of package haar: the
// coefficient with per-dimension 1-d index (i_1, ..., i_d) lives at those
// array coordinates. For the non-standard form the detail coefficient of
// level j, subband e in {0,1}^d \ {0}, translation p has coordinate
// e_i*2^(n-j) + p_i in dimension i, and the overall average sits at the
// origin.
package wavelet

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// Form selects one of the two multidimensional decompositions.
type Form int

const (
	// Standard applies a complete 1-d transform per dimension.
	Standard Form = iota
	// NonStandard alternates dimensions level by level.
	NonStandard
)

// String names the form.
func (f Form) String() string {
	switch f {
	case Standard:
		return "standard"
	case NonStandard:
		return "non-standard"
	default:
		return fmt.Sprintf("Form(%d)", int(f))
	}
}

// Transform decomposes a into the requested form. The input is unchanged.
func Transform(a *ndarray.Array, form Form) *ndarray.Array {
	switch form {
	case Standard:
		return TransformStandard(a)
	case NonStandard:
		return TransformNonStandard(a)
	default:
		panic(fmt.Sprintf("wavelet: unknown form %d", int(form)))
	}
}

// Inverse reconstructs the original array from a transform of either form.
func Inverse(hat *ndarray.Array, form Form) *ndarray.Array {
	switch form {
	case Standard:
		return InverseStandard(hat)
	case NonStandard:
		return InverseNonStandard(hat)
	default:
		panic(fmt.Sprintf("wavelet: unknown form %d", int(form)))
	}
}

func checkShape(a *ndarray.Array, cubic bool) {
	shape := a.Shape()
	if len(shape) == 0 {
		panic("wavelet: zero-dimensional array")
	}
	for _, s := range shape {
		if !bitutil.IsPow2(s) {
			panic(fmt.Sprintf("wavelet: extent %d in shape %v is not a power of two", s, shape))
		}
	}
	if cubic {
		for _, s := range shape[1:] {
			if s != shape[0] {
				panic(fmt.Sprintf("wavelet: non-standard form requires a cubic array, got %v", shape))
			}
		}
	}
}

// Scratch holds the reusable working buffers of the in-place transforms so
// the maintenance engines can transform one chunk after another without
// per-chunk (or per-fiber) allocation. A Scratch grows on demand, is cheap
// when zero-valued, and must not be shared between concurrent transforms.
type Scratch struct {
	line  []float64
	fiber []float64
	aux   []float64
	dims  []int
}

// NewScratch returns an empty scratch; the first transform sizes it.
func NewScratch() *Scratch { return &Scratch{} }

// ensure grows the buffers to cover extents up to maxExtent in d dimensions.
func (s *Scratch) ensure(maxExtent, d int) {
	if cap(s.line) < maxExtent {
		s.line = make([]float64, maxExtent)
		s.fiber = make([]float64, maxExtent)
		s.aux = make([]float64, maxExtent/2+1)
	}
	if cap(s.dims) < d {
		s.dims = make([]int, d)
	}
}

// TransformStandard computes the standard-form decomposition: a complete 1-d
// Haar transform along every dimension. Extents may differ but must each be
// a power of two. The input is unchanged.
func TransformStandard(a *ndarray.Array) *ndarray.Array {
	out := a.Clone()
	TransformStandardInPlace(out, NewScratch())
	return out
}

// TransformStandardInPlace overwrites a with its standard-form decomposition
// using the caller's scratch. It performs the identical floating-point
// operations in the identical order as TransformStandard, so results are
// bit-equal; it just never allocates past the scratch's high-water mark.
func TransformStandardInPlace(a *ndarray.Array, s *Scratch) {
	stdPasses(a, s, false)
}

// InverseStandard reconstructs the original array from a standard transform.
func InverseStandard(hat *ndarray.Array) *ndarray.Array {
	out := hat.Clone()
	InverseStandardInPlace(out, NewScratch())
	return out
}

// InverseStandardInPlace overwrites hat with its reconstruction (see
// TransformStandardInPlace for the scratch contract).
func InverseStandardInPlace(hat *ndarray.Array, s *Scratch) {
	stdPasses(hat, s, true)
}

// stdPasses runs the per-dimension complete 1-d transforms (or their
// inverses, in reversed dimension order) in place. Innermost-dimension
// fibers are contiguous and transform with zero copying; strided fibers
// gather into the scratch and scatter back.
func stdPasses(a *ndarray.Array, s *Scratch, inverse bool) {
	checkShape(a, false)
	maxExtent := 0
	for dim := 0; dim < a.Dims(); dim++ {
		if e := a.Extent(dim); e > maxExtent {
			maxExtent = e
		}
	}
	s.ensure(maxExtent, a.Dims())
	data := a.Data()
	pass := func(dim int) {
		e := a.Extent(dim)
		a.EachFiber(dim, func(fixed []int) {
			base, stride, _ := a.FiberSpan(dim, fixed)
			src := s.fiber[:e]
			if stride == 1 {
				src = data[base : base+e]
			} else {
				for i := 0; i < e; i++ {
					src[i] = data[base+i*stride]
				}
			}
			if inverse {
				haar.InverseInto(s.line[:e], src, s.aux)
			} else {
				haar.TransformInto(s.line[:e], src, s.aux)
			}
			if stride == 1 {
				copy(data[base:base+e], s.line[:e])
			} else {
				for i := 0; i < e; i++ {
					data[base+i*stride] = s.line[i]
				}
			}
		})
	}
	if inverse {
		for dim := a.Dims() - 1; dim >= 0; dim-- {
			pass(dim)
		}
	} else {
		for dim := 0; dim < a.Dims(); dim++ {
			pass(dim)
		}
	}
}

// TransformNonStandard computes the non-standard decomposition of a cubic
// array whose edge is a power of two. The input is unchanged.
func TransformNonStandard(a *ndarray.Array) *ndarray.Array {
	out := a.Clone()
	TransformNonStandardInPlace(out, NewScratch())
	return out
}

// TransformNonStandardInPlace overwrites a with its non-standard
// decomposition using the caller's scratch (bit-equal to
// TransformNonStandard; see TransformStandardInPlace).
func TransformNonStandardInPlace(a *ndarray.Array, s *Scratch) {
	checkShape(a, true)
	s.ensure(a.Extent(0), a.Dims())
	n := bitutil.Log2(a.Extent(0))
	for j := 1; j <= n; j++ {
		edge := a.Extent(0) >> uint(j-1)
		oneNonStdLevel(a, edge, false, s)
	}
}

// InverseNonStandard reconstructs the original cubic array.
func InverseNonStandard(hat *ndarray.Array) *ndarray.Array {
	out := hat.Clone()
	InverseNonStandardInPlace(out, NewScratch())
	return out
}

// InverseNonStandardInPlace overwrites hat with its reconstruction (see
// TransformStandardInPlace for the scratch contract).
func InverseNonStandardInPlace(hat *ndarray.Array, s *Scratch) {
	checkShape(hat, true)
	s.ensure(hat.Extent(0), hat.Dims())
	n := bitutil.Log2(hat.Extent(0))
	for j := n; j >= 1; j-- {
		edge := hat.Extent(0) >> uint(j-1)
		oneNonStdLevel(hat, edge, true, s)
	}
}

// oneNonStdLevel applies (or inverts) one level of pairwise
// averaging/differencing along every dimension inside the leading
// edge^d sub-cube, leaving averages in the leading (edge/2)^d corner and
// details in the Mallat subband positions. The region fibers are accessed
// through their strided span directly, so no per-fiber slice is built.
func oneNonStdLevel(a *ndarray.Array, edge int, inverse bool, s *Scratch) {
	d := a.Dims()
	half := edge / 2
	buf := s.line[:edge]
	dims := s.dims[:d]
	for i := range dims {
		dims[i] = i
	}
	if inverse {
		for i, j := 0, d-1; i < j; i, j = i+1, j-1 {
			dims[i], dims[j] = dims[j], dims[i]
		}
	}
	data := a.Data()
	for _, dim := range dims {
		eachRegionFiber(a, dim, edge, func(fixed []int) {
			base, stride, _ := a.FiberSpan(dim, fixed)
			if inverse {
				for k := 0; k < half; k++ {
					u, w := data[base+k*stride], data[base+(half+k)*stride]
					buf[2*k] = u + w
					buf[2*k+1] = u - w
				}
			} else {
				for k := 0; k < half; k++ {
					x, y := data[base+2*k*stride], data[base+(2*k+1)*stride]
					buf[k] = (x + y) / 2
					buf[half+k] = (x - y) / 2
				}
			}
			for k := 0; k < edge; k++ {
				data[base+k*stride] = buf[k]
			}
		})
	}
}

// eachRegionFiber visits each fiber along dim whose other coordinates lie in
// [0, edge).
func eachRegionFiber(a *ndarray.Array, dim, edge int, visit func(fixed []int)) {
	d := a.Dims()
	fixed := make([]int, d)
	var rec func(i int)
	rec = func(i int) {
		if i == d {
			visit(fixed)
			return
		}
		if i == dim {
			fixed[i] = 0
			rec(i + 1)
			return
		}
		for c := 0; c < edge; c++ {
			fixed[i] = c
			rec(i + 1)
		}
	}
	rec(0)
}

// Coef references one coefficient of a multidimensional transform by its
// array coordinates, with the weight it contributes to a reconstruction.
type Coef struct {
	Coords []int
	Weight float64
}

// PointPathStandard returns the prod_i (n_i + 1) weighted coefficients that
// reconstruct the cell at point for a standard-form transform of the given
// shape (the cross product of the per-dimension Lemma-1 paths, paper §3.1).
func PointPathStandard(shape, point []int) []Coef {
	d := len(shape)
	perDim := make([][]haar.Coef, d)
	total := 1
	for i := range shape {
		perDim[i] = haar.PointPath(bitutil.Log2(shape[i]), point[i])
		total *= len(perDim[i])
	}
	out := make([]Coef, 0, total)
	idx := make([]int, d)
	for {
		coords := make([]int, d)
		w := 1.0
		for i := 0; i < d; i++ {
			c := perDim[i][idx[i]]
			coords[i] = c.Index
			w *= c.Weight
		}
		out = append(out, Coef{Coords: coords, Weight: w})
		i := d - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(perDim[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// ReconstructPointStandard evaluates one cell from a standard transform.
func ReconstructPointStandard(hat *ndarray.Array, point []int) float64 {
	v := 0.0
	for _, c := range PointPathStandard(hat.Shape(), point) {
		v += c.Weight * hat.At(c.Coords...)
	}
	return v
}

// RangeSumCoefsStandard returns the weighted coefficients answering the sum
// over the half-open box [start, start+shape) of the original array, as the
// cross product of per-dimension range-sum coefficient sets. At most
// prod_i (2*n_i + 1) coefficients appear.
func RangeSumCoefsStandard(arrShape, start, shape []int) []Coef {
	d := len(arrShape)
	perDim := make([][]haar.Coef, d)
	for i := range arrShape {
		n := bitutil.Log2(arrShape[i])
		perDim[i] = haar.RangeSumCoefs(n, start[i], start[i]+shape[i]-1)
	}
	var out []Coef
	idx := make([]int, d)
	for {
		coords := make([]int, d)
		w := 1.0
		for i := 0; i < d; i++ {
			c := perDim[i][idx[i]]
			coords[i] = c.Index
			w *= c.Weight
		}
		if w != 0 {
			out = append(out, Coef{Coords: coords, Weight: w})
		}
		i := d - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(perDim[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// RangeSumStandard evaluates a box sum directly from a standard transform.
func RangeSumStandard(hat *ndarray.Array, start, shape []int) float64 {
	sum := 0.0
	for _, c := range RangeSumCoefsStandard(hat.Shape(), start, shape) {
		sum += c.Weight * hat.At(c.Coords...)
	}
	return sum
}

// NonStdCoords returns the array coordinates of the non-standard detail
// coefficient at level j (1..n), subband (one bit per dimension, not all
// zero), and translation pos (each in [0, 2^(n-j))).
func NonStdCoords(n, j int, subband []bool, pos []int) []int {
	if j < 1 || j > n {
		panic(fmt.Sprintf("wavelet: NonStdCoords level %d out of [1,%d]", j, n))
	}
	coords := make([]int, len(pos))
	base := 1 << uint(n-j)
	any := false
	for i := range pos {
		if pos[i] < 0 || pos[i] >= base {
			panic(fmt.Sprintf("wavelet: NonStdCoords pos %v out of range at level %d", pos, j))
		}
		coords[i] = pos[i]
		if subband[i] {
			coords[i] += base
			any = true
		}
	}
	if !any {
		panic("wavelet: NonStdCoords requires a non-zero subband")
	}
	return coords
}

// NonStdLevel decodes array coordinates of a non-standard transform into
// (level, subband, pos). The origin decodes to level n+1 ("the average") by
// convention with a nil subband.
func NonStdLevel(n int, coords []int) (j int, subband []bool, pos []int) {
	max := 0
	for _, c := range coords {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return n + 1, nil, make([]int, len(coords))
	}
	// The level is determined by the largest coordinate: base = 2^(n-j) is
	// the largest power of two <= max.
	base := 1 << uint(bitutil.FloorLog2(max))
	j = n - bitutil.FloorLog2(max)
	subband = make([]bool, len(coords))
	pos = make([]int, len(coords))
	for i, c := range coords {
		if c >= base {
			subband[i] = true
			pos[i] = c - base
		} else {
			pos[i] = c
		}
		if pos[i] >= base {
			panic(fmt.Sprintf("wavelet: coords %v are not a valid non-standard position", coords))
		}
	}
	return j, subband, pos
}

// ReconstructPointNonStandard evaluates one cell of the original cubic array
// from its non-standard transform, touching 1 + n*(2^d - 1) coefficients
// (the quadtree path of §3.1).
func ReconstructPointNonStandard(hat *ndarray.Array, point []int) float64 {
	d := hat.Dims()
	n := bitutil.Log2(hat.Extent(0))
	origin := make([]int, d)
	u := hat.At(origin...)
	subband := make([]bool, d)
	coords := make([]int, d)
	for j := n; j >= 1; j-- {
		// Parent cell translation and the quadrant the point falls in.
		base := 1 << uint(n-j)
		// Sum over the 2^d - 1 subbands.
		for mask := 1; mask < 1<<uint(d); mask++ {
			w := 1.0
			for i := 0; i < d; i++ {
				subband[i] = mask>>uint(i)&1 == 1
				p := point[i] >> uint(j)
				coords[i] = p
				if subband[i] {
					coords[i] += base
					if point[i]>>uint(j-1)&1 == 1 {
						w = -w
					}
				}
			}
			u += w * hat.At(coords...)
		}
	}
	return u
}

// RangeSumNonStandard evaluates the sum over the half-open box
// [start, start+shape) from a non-standard transform by recursive quadtree
// descent: fully covered cells contribute their average times volume,
// partially covered cells recurse into their 2^d children.
func RangeSumNonStandard(hat *ndarray.Array, start, shape []int) float64 {
	d := hat.Dims()
	n := bitutil.Log2(hat.Extent(0))
	end := make([]int, d)
	for i := range start {
		if start[i] < 0 || shape[i] < 0 || start[i]+shape[i] > hat.Extent(i) {
			panic(fmt.Sprintf("wavelet: RangeSumNonStandard box %v+%v out of bounds", start, shape))
		}
		end[i] = start[i] + shape[i]
	}
	origin := make([]int, d)
	var descend func(j int, cell []int, u float64) float64
	descend = func(j int, cell []int, u float64) float64 {
		size := 1 << uint(j)
		// Cell box: [cell_i*size, (cell_i+1)*size) per dimension.
		fullyIn, disjoint := true, false
		for i := 0; i < d; i++ {
			lo, hi := cell[i]*size, (cell[i]+1)*size
			if hi <= start[i] || lo >= end[i] {
				disjoint = true
				break
			}
			if lo < start[i] || hi > end[i] {
				fullyIn = false
			}
		}
		if disjoint {
			return 0
		}
		if fullyIn {
			return u * float64(bitutil.IntPow(size, d))
		}
		if j == 0 {
			return u // single cell partially... cannot happen; j==0 cell is a point
		}
		// Recurse: compute each child's scaling coefficient from u and the
		// 2^d - 1 details of level j at translation cell.
		base := 1 << uint(n-j)
		details := make([]float64, 1<<uint(d))
		coords := make([]int, d)
		for mask := 1; mask < 1<<uint(d); mask++ {
			for i := 0; i < d; i++ {
				coords[i] = cell[i]
				if mask>>uint(i)&1 == 1 {
					coords[i] += base
				}
			}
			details[mask] = hat.At(coords...)
		}
		sum := 0.0
		child := make([]int, d)
		for q := 0; q < 1<<uint(d); q++ {
			cu := u
			for mask := 1; mask < 1<<uint(d); mask++ {
				w := 1.0
				for i := 0; i < d; i++ {
					if mask>>uint(i)&1 == 1 && q>>uint(i)&1 == 1 {
						w = -w
					}
				}
				cu += w * details[mask]
			}
			for i := 0; i < d; i++ {
				child[i] = 2*cell[i] + q>>uint(i)&1
			}
			sum += descend(j-1, child, cu)
		}
		return sum
	}
	rootCell := make([]int, d)
	return descend(n, rootCell, hat.At(origin...))
}
