package wavelet

import (
	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// BasisVector materializes the synthesis basis function of one coefficient:
// the data-domain array reconstructed from a transform that is 1 at coords
// and 0 elsewhere (Appendix A/B of the paper). It exists chiefly for
// verification: the basis family must be orthogonal with squared norms
// equal to the coefficient support volumes, which pins down every layout
// and sign convention in the library at once.
func BasisVector(shape []int, form Form, coords []int) *ndarray.Array {
	hat := ndarray.New(shape...)
	hat.Set(1, coords...)
	return Inverse(hat, form)
}

// SupportVolume returns the number of cells in the support of the
// coefficient at coords, for either form.
func SupportVolume(shape []int, form Form, coords []int) int {
	switch form {
	case Standard:
		vol := 1
		for t, c := range coords {
			n := bitutil.Log2(shape[t])
			if c == 0 {
				vol *= 1 << uint(n)
				continue
			}
			// Support length of a 1-d detail is 2^level.
			vol *= (1 << uint(n)) >> uint(bitutil.FloorLog2(c))
		}
		return vol
	case NonStandard:
		n := bitutil.Log2(shape[0])
		j, subband, _ := NonStdLevel(n, coords)
		if subband == nil {
			j = n
		}
		return bitutil.IntPow(1<<uint(j), len(shape))
	default:
		panic("wavelet: unknown form")
	}
}
