package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

const tol = 1e-9

func randArray(rng *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64() * 10
	}
	return a
}

func TestStandardMatchesHaarIn1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 16)
	for i := range v {
		v[i] = rng.Float64()
	}
	a := ndarray.FromSlice(append([]float64(nil), v...), 16)
	hat := TransformStandard(a)
	want := haar.Transform(v)
	for i := range want {
		if math.Abs(hat.Data()[i]-want[i]) > tol {
			t.Fatalf("1-d standard transform differs at %d", i)
		}
	}
}

func TestNonStandardMatchesHaarIn1D(t *testing.T) {
	// In one dimension the two forms coincide.
	rng := rand.New(rand.NewSource(2))
	a := randArray(rng, 32)
	std := TransformStandard(a)
	nonstd := TransformNonStandard(a)
	if !std.EqualApprox(nonstd, tol) {
		t.Error("1-d standard and non-standard transforms should coincide")
	}
}

func TestStandardRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][]int{{4}, {8, 8}, {4, 16}, {8, 4, 2}, {4, 4, 4, 4}}
	for _, shape := range shapes {
		a := randArray(rng, shape...)
		back := InverseStandard(TransformStandard(a))
		if !a.EqualApprox(back, tol) {
			t.Errorf("standard round trip failed for shape %v (max diff %g)", shape, a.MaxAbsDiff(back))
		}
	}
}

func TestNonStandardRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := [][]int{{8}, {8, 8}, {4, 4, 4}, {4, 4, 4, 4}, {16, 16}}
	for _, shape := range shapes {
		a := randArray(rng, shape...)
		back := InverseNonStandard(TransformNonStandard(a))
		if !a.EqualApprox(back, tol) {
			t.Errorf("non-standard round trip failed for shape %v (max diff %g)", shape, a.MaxAbsDiff(back))
		}
	}
}

func TestFormDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randArray(rng, 8, 8)
	if !Transform(a, Standard).EqualApprox(TransformStandard(a), 0) {
		t.Error("Transform(Standard) dispatch wrong")
	}
	if !Transform(a, NonStandard).EqualApprox(TransformNonStandard(a), 0) {
		t.Error("Transform(NonStandard) dispatch wrong")
	}
	if !Inverse(Transform(a, Standard), Standard).EqualApprox(a, tol) {
		t.Error("Inverse(Standard) dispatch wrong")
	}
	if !Inverse(Transform(a, NonStandard), NonStandard).EqualApprox(a, tol) {
		t.Error("Inverse(NonStandard) dispatch wrong")
	}
}

func TestFormString(t *testing.T) {
	if Standard.String() != "standard" || NonStandard.String() != "non-standard" {
		t.Error("Form.String wrong")
	}
	if Form(9).String() == "" {
		t.Error("unknown form should still render")
	}
}

func TestNonStandardRequiresCubic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-cubic non-standard transform did not panic")
		}
	}()
	TransformNonStandard(ndarray.New(4, 8))
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two extent did not panic")
		}
	}()
	TransformStandard(ndarray.New(6, 4))
}

func TestAverageAtOrigin(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, form := range []Form{Standard, NonStandard} {
		a := randArray(rng, 8, 8)
		hat := Transform(a, form)
		mean := a.Sum() / float64(a.Size())
		if math.Abs(hat.At(0, 0)-mean) > tol {
			t.Errorf("%v: origin = %g, want mean %g", form, hat.At(0, 0), mean)
		}
	}
}

func TestTransformsDoNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randArray(rng, 8, 8)
	orig := a.Clone()
	TransformStandard(a)
	TransformNonStandard(a)
	if !a.EqualApprox(orig, 0) {
		t.Error("transform mutated input")
	}
}

func TestStandard2DManual(t *testing.T) {
	// 2x2 array [[a,b],[c,d]]: standard transform gives
	// [[ (a+b+c+d)/4, (a-b+c-d)/4 ], [ (a+b-c-d)/4, (a-b-c+d)/4 ]].
	a := ndarray.FromSlice([]float64{1, 3, 5, 7}, 2, 2)
	hat := TransformStandard(a)
	want := [][]float64{{4, -1}, {-2, 0}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(hat.At(i, j)-want[i][j]) > tol {
				t.Fatalf("hat[%d][%d] = %g, want %g", i, j, hat.At(i, j), want[i][j])
			}
		}
	}
}

func TestNonStandard2DManualOneLevel(t *testing.T) {
	// For a 2x2 array a single level is the whole transform, and the two
	// forms coincide.
	a := ndarray.FromSlice([]float64{1, 3, 5, 7}, 2, 2)
	if !TransformNonStandard(a).EqualApprox(TransformStandard(a), tol) {
		t.Error("2x2 forms should coincide")
	}
}

func TestFormsDifferBeyondOneLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randArray(rng, 4, 4)
	if TransformStandard(a).EqualApprox(TransformNonStandard(a), 1e-12) {
		t.Error("standard and non-standard should differ for 4x4 generic input")
	}
}

func TestPointPathStandardCount(t *testing.T) {
	shape := []int{8, 16}
	path := PointPathStandard(shape, []int{5, 11})
	want := (3 + 1) * (4 + 1)
	if len(path) != want {
		t.Errorf("path length %d, want %d", len(path), want)
	}
}

func TestReconstructPointStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randArray(rng, 8, 4, 8)
	hat := TransformStandard(a)
	for trial := 0; trial < 100; trial++ {
		p := []int{rng.Intn(8), rng.Intn(4), rng.Intn(8)}
		if got, want := ReconstructPointStandard(hat, p), a.At(p...); math.Abs(got-want) > 1e-8 {
			t.Fatalf("point %v: got %g want %g", p, got, want)
		}
	}
}

func TestReconstructPointNonStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, shape := range [][]int{{16}, {8, 8}, {4, 4, 4}} {
		a := randArray(rng, shape...)
		hat := TransformNonStandard(a)
		for trial := 0; trial < 50; trial++ {
			p := make([]int, len(shape))
			for i := range p {
				p[i] = rng.Intn(shape[i])
			}
			if got, want := ReconstructPointNonStandard(hat, p), a.At(p...); math.Abs(got-want) > 1e-8 {
				t.Fatalf("shape %v point %v: got %g want %g", shape, p, got, want)
			}
		}
	}
}

func TestRangeSumStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randArray(rng, 16, 8)
	hat := TransformStandard(a)
	for trial := 0; trial < 100; trial++ {
		s := []int{rng.Intn(16), rng.Intn(8)}
		sh := []int{1 + rng.Intn(16-s[0]), 1 + rng.Intn(8-s[1])}
		want := a.SumRange(s, sh)
		if got := RangeSumStandard(hat, s, sh); math.Abs(got-want) > 1e-7 {
			t.Fatalf("box %v+%v: got %g want %g", s, sh, got, want)
		}
	}
}

func TestRangeSumCoefsStandardBound(t *testing.T) {
	// At most prod (2 n_i + 1) coefficients.
	shape := []int{16, 16}
	coefs := RangeSumCoefsStandard(shape, []int{3, 5}, []int{7, 9})
	bound := (2*4 + 1) * (2*4 + 1)
	if len(coefs) > bound {
		t.Errorf("used %d coefficients, bound %d", len(coefs), bound)
	}
}

func TestRangeSumNonStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, shape := range [][]int{{16}, {8, 8}, {4, 4, 4}} {
		a := randArray(rng, shape...)
		hat := TransformNonStandard(a)
		for trial := 0; trial < 60; trial++ {
			s := make([]int, len(shape))
			sh := make([]int, len(shape))
			for i := range shape {
				s[i] = rng.Intn(shape[i])
				sh[i] = 1 + rng.Intn(shape[i]-s[i])
			}
			want := a.SumRange(s, sh)
			if got := RangeSumNonStandard(hat, s, sh); math.Abs(got-want) > 1e-7 {
				t.Fatalf("shape %v box %v+%v: got %g want %g", shape, s, sh, got, want)
			}
		}
	}
}

func TestRangeSumNonStandardFullDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randArray(rng, 8, 8)
	hat := TransformNonStandard(a)
	if got := RangeSumNonStandard(hat, []int{0, 0}, []int{8, 8}); math.Abs(got-a.Sum()) > 1e-7 {
		t.Errorf("full-domain sum %g, want %g", got, a.Sum())
	}
}

func TestNonStdCoordsRoundTrip(t *testing.T) {
	n, d := 4, 3
	for j := 1; j <= n; j++ {
		base := 1 << uint(n-j)
		for mask := 1; mask < 1<<uint(d); mask++ {
			subband := make([]bool, d)
			for i := range subband {
				subband[i] = mask>>uint(i)&1 == 1
			}
			pos := []int{0 % base, (base - 1) % base, (base / 2) % base}
			coords := NonStdCoords(n, j, subband, pos)
			gj, gs, gp := NonStdLevel(n, coords)
			if gj != j {
				t.Fatalf("level %d decoded as %d (coords %v)", j, gj, coords)
			}
			for i := 0; i < d; i++ {
				if gs[i] != subband[i] || gp[i] != pos[i] {
					t.Fatalf("decode mismatch at level %d mask %d: %v %v vs %v %v", j, mask, gs, gp, subband, pos)
				}
			}
		}
	}
}

func TestNonStdLevelOrigin(t *testing.T) {
	j, sb, pos := NonStdLevel(4, []int{0, 0})
	if j != 5 || sb != nil || pos[0] != 0 || pos[1] != 0 {
		t.Errorf("origin decoded as j=%d sb=%v pos=%v", j, sb, pos)
	}
}

func TestNonStdCoordsZeroSubbandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero subband did not panic")
		}
	}()
	NonStdCoords(4, 2, []bool{false, false}, []int{0, 0})
}

func TestQuickStandardRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(3)
		shape := make([]int, dims)
		for i := range shape {
			shape[i] = 1 << uint(1+rng.Intn(4))
		}
		a := randArray(rng, shape...)
		return InverseStandard(TransformStandard(a)).EqualApprox(a, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickNonStandardRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(3)
		edge := 1 << uint(1+rng.Intn(3))
		shape := make([]int, dims)
		for i := range shape {
			shape[i] = edge
		}
		a := randArray(rng, shape...)
		return InverseNonStandard(TransformNonStandard(a)).EqualApprox(a, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickLinearityStandard(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randArray(rng, 8, 8), randArray(rng, 8, 8)
		sum := a.Clone()
		for i := range sum.Data() {
			sum.Data()[i] += b.Data()[i]
		}
		ha, hb, hs := TransformStandard(a), TransformStandard(b), TransformStandard(sum)
		for i := range hs.Data() {
			if math.Abs(hs.Data()[i]-ha.Data()[i]-hb.Data()[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickLinearityNonStandard(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randArray(rng, 8, 8), randArray(rng, 8, 8)
		sum := a.Clone()
		for i := range sum.Data() {
			sum.Data()[i] += b.Data()[i]
		}
		ha, hb, hs := TransformNonStandard(a), TransformNonStandard(b), TransformNonStandard(sum)
		for i := range hs.Data() {
			if math.Abs(hs.Data()[i]-ha.Data()[i]-hb.Data()[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
