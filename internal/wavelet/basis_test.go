package wavelet

import (
	"math"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// TestBasisOrthogonality verifies, for both forms, that all basis functions
// are mutually orthogonal with squared norm equal to their support volume —
// the property that makes best-K thresholding optimal and SSE accounting
// exact throughout the library.
func TestBasisOrthogonality(t *testing.T) {
	shape := []int{8, 8}
	for _, form := range []Form{Standard, NonStandard} {
		var bases []*ndarray.Array
		var vols []int
		probe := ndarray.New(shape...)
		probe.Each(func(coords []int, _ float64) {
			bases = append(bases, BasisVector(shape, form, coords))
			vols = append(vols, SupportVolume(shape, form, coords))
		})
		for i := range bases {
			for j := i; j < len(bases); j++ {
				dot := 0.0
				for x := range bases[i].Data() {
					dot += bases[i].Data()[x] * bases[j].Data()[x]
				}
				if i == j {
					if math.Abs(dot-float64(vols[i])) > 1e-9 {
						t.Fatalf("%v: basis %d norm^2 = %g, want support volume %d", form, i, dot, vols[i])
					}
				} else if math.Abs(dot) > 1e-10 {
					t.Fatalf("%v: bases %d and %d not orthogonal (dot %g)", form, i, j, dot)
				}
			}
		}
	}
}

// TestBasisSynthesisIdentity verifies that the data equals the
// coefficient-weighted sum of basis vectors.
func TestBasisSynthesisIdentity(t *testing.T) {
	shape := []int{4, 8}
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = float64(i)*0.37 - 3
	}
	hat := TransformStandard(a)
	sum := ndarray.New(shape...)
	hat.Each(func(coords []int, c float64) {
		if c == 0 {
			return
		}
		basis := BasisVector(shape, Standard, coords)
		for x := range sum.Data() {
			sum.Data()[x] += c * basis.Data()[x]
		}
	})
	if !sum.EqualApprox(a, 1e-8) {
		t.Errorf("synthesis identity fails by %g", sum.MaxAbsDiff(a))
	}
}

// TestStandardBasisIsTensorProduct confirms the standard multidimensional
// basis factorizes across dimensions (Appendix B).
func TestStandardBasisIsTensorProduct(t *testing.T) {
	shape := []int{8, 8}
	for _, coords := range [][]int{{0, 0}, {1, 3}, {5, 0}, {6, 7}} {
		basis := BasisVector(shape, Standard, coords)
		// 1-d factors.
		f0 := BasisVector([]int{8}, Standard, []int{coords[0]})
		f1 := BasisVector([]int{8}, Standard, []int{coords[1]})
		for x := 0; x < 8; x++ {
			for y := 0; y < 8; y++ {
				want := f0.At(x) * f1.At(y)
				if math.Abs(basis.At(x, y)-want) > 1e-12 {
					t.Fatalf("coords %v: basis(%d,%d) = %g, want %g", coords, x, y, basis.At(x, y), want)
				}
			}
		}
	}
}

// TestNonStandardBasisPiecewiseConstant confirms each non-standard basis is
// constant on the quadrants of its support and zero outside it.
func TestNonStandardBasisPiecewiseConstant(t *testing.T) {
	shape := []int{8, 8}
	probe := ndarray.New(shape...)
	probe.Each(func(coords []int, _ float64) {
		basis := BasisVector(shape, NonStandard, coords)
		j, subband, pos := NonStdLevel(3, coords)
		if subband == nil {
			// The average basis: all ones.
			for _, v := range basis.Data() {
				if v != 1 {
					t.Fatalf("average basis not constant one")
				}
			}
			return
		}
		size := 1 << uint(j)
		half := size / 2
		for x := 0; x < 8; x++ {
			for y := 0; y < 8; y++ {
				v := basis.At(x, y)
				inside := x >= pos[0]*size && x < (pos[0]+1)*size &&
					y >= pos[1]*size && y < (pos[1]+1)*size
				if !inside {
					if v != 0 {
						t.Fatalf("coords %v: non-zero value outside support", coords)
					}
					continue
				}
				// Inside: value must be +-1 with sign given by quadrant bits
				// of the subband dimensions.
				want := 1.0
				if subband[0] && (x-pos[0]*size) >= half {
					want = -want
				}
				if subband[1] && (y-pos[1]*size) >= half {
					want = -want
				}
				if v != want {
					t.Fatalf("coords %v at (%d,%d): %g, want %g", coords, x, y, v, want)
				}
			}
		}
	})
}
