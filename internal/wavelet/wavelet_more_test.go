package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

func TestStandardDegenerate1xN(t *testing.T) {
	// A 1xN array: dimension 0 is trivial; the transform must match the
	// 1-d transform of the row.
	rng := rand.New(rand.NewSource(20))
	a := randArray(rng, 1, 16)
	hat := TransformStandard(a)
	row := ndarray.FromSlice(append([]float64(nil), a.Data()...), 16)
	want := TransformStandard(row)
	for j := 0; j < 16; j++ {
		if math.Abs(hat.At(0, j)-want.At(j)) > 1e-9 {
			t.Fatalf("column %d differs", j)
		}
	}
	if !InverseStandard(hat).EqualApprox(a, 1e-9) {
		t.Error("1xN round trip failed")
	}
}

func TestStandard4DRoundTripAndPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randArray(rng, 4, 4, 4, 4)
	hat := TransformStandard(a)
	if !InverseStandard(hat).EqualApprox(a, 1e-9) {
		t.Fatal("4-d round trip failed")
	}
	for trial := 0; trial < 30; trial++ {
		p := []int{rng.Intn(4), rng.Intn(4), rng.Intn(4), rng.Intn(4)}
		if got := ReconstructPointStandard(hat, p); math.Abs(got-a.At(p...)) > 1e-8 {
			t.Fatalf("point %v: %g vs %g", p, got, a.At(p...))
		}
		// Lemma-1 path size in 4-d: (n+1)^4 = 81 coefficients.
		if got := len(PointPathStandard(a.Shape(), p)); got != 81 {
			t.Fatalf("path size %d, want 81", got)
		}
	}
}

func TestNonStandard4D(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randArray(rng, 4, 4, 4, 4)
	hat := TransformNonStandard(a)
	if !InverseNonStandard(hat).EqualApprox(a, 1e-9) {
		t.Fatal("4-d non-standard round trip failed")
	}
	for trial := 0; trial < 30; trial++ {
		p := []int{rng.Intn(4), rng.Intn(4), rng.Intn(4), rng.Intn(4)}
		if got := ReconstructPointNonStandard(hat, p); math.Abs(got-a.At(p...)) > 1e-8 {
			t.Fatalf("point %v: %g vs %g", p, got, a.At(p...))
		}
	}
}

func TestRangeSumStandard3D(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randArray(rng, 8, 4, 8)
	hat := TransformStandard(a)
	for trial := 0; trial < 40; trial++ {
		s := []int{rng.Intn(8), rng.Intn(4), rng.Intn(8)}
		sh := []int{1 + rng.Intn(8-s[0]), 1 + rng.Intn(4-s[1]), 1 + rng.Intn(8-s[2])}
		if got, want := RangeSumStandard(hat, s, sh), a.SumRange(s, sh); math.Abs(got-want) > 1e-6 {
			t.Fatalf("box %v+%v: %g vs %g", s, sh, got, want)
		}
	}
}

func TestConstantArrayHasOnlyAverage(t *testing.T) {
	a := ndarray.New(8, 8)
	a.Fill(3.5)
	for _, form := range []Form{Standard, NonStandard} {
		hat := Transform(a, form)
		hat.Each(func(coords []int, v float64) {
			if coords[0] == 0 && coords[1] == 0 {
				if math.Abs(v-3.5) > 1e-12 {
					t.Errorf("%v: average %g", form, v)
				}
				return
			}
			if v != 0 {
				t.Errorf("%v: detail at %v is %g", form, coords, v)
			}
		})
	}
}

func TestSingleSpikeEnergyConservation(t *testing.T) {
	// A unit spike has energy 1; sum of coefficient energies must match.
	a := ndarray.New(16, 16)
	a.Set(1, 5, 9)
	for _, form := range []Form{Standard, NonStandard} {
		hat := Transform(a, form)
		energy := 0.0
		n := 4
		hat.Each(func(coords []int, v float64) {
			if v == 0 {
				return
			}
			vol := 1.0
			switch form {
			case Standard:
				for _, c := range coords {
					vol *= supportLen(n, c)
				}
			case NonStandard:
				j, sb, _ := NonStdLevel(n, coords)
				if sb == nil {
					j = n
				}
				vol = float64(int(1) << uint(2*j))
			}
			energy += v * v * vol
		})
		if math.Abs(energy-1) > 1e-9 {
			t.Errorf("%v: spike energy %g, want 1", form, energy)
		}
	}
}

func supportLen(n, idx int) float64 {
	if idx == 0 {
		return float64(int(1) << uint(n))
	}
	// level of idx: highest power of two <= idx gives 2^(n-j).
	p := 1
	for p*2 <= idx {
		p *= 2
	}
	return float64((int(1) << uint(n)) / p)
}
