package transform

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/parallel"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// TestAllocBudget is the CI allocation gate (run by `make bench-smoke`):
// it replays the BENCH_maintain.json workloads at workers=1 and fails
// when allocs/op regress more than 20% past the recorded budget. The
// budgets live in the benchmark baseline file so re-baselining perf and
// tightening the gate are the same edit.
const allocBudgetSlack = 1.20

func allocBudgets(t *testing.T) map[string]float64 {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_maintain.json"))
	if err != nil {
		t.Fatalf("read alloc budgets: %v", err)
	}
	var doc struct {
		AllocsPerOp map[string]float64 `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_maintain.json: %v", err)
	}
	if len(doc.AllocsPerOp) == 0 {
		t.Fatal("BENCH_maintain.json has no allocs_per_op budgets")
	}
	return doc.AllocsPerOp
}

func checkAllocBudget(t *testing.T, budgets map[string]float64, key string, run func()) {
	t.Helper()
	budget, ok := budgets[key]
	if !ok {
		t.Fatalf("BENCH_maintain.json has no allocs_per_op budget for %q", key)
	}
	run() // warm pools and the page heap outside the measured runs
	got := testing.AllocsPerRun(3, run)
	limit := budget * allocBudgetSlack
	if got > limit {
		t.Errorf("%s: %.0f allocs/op exceeds budget %.0f (+20%% = %.0f); if intentional, re-baseline BENCH_maintain.json",
			key, got, budget, limit)
	} else {
		t.Logf("%s: %.0f allocs/op (budget %.0f, limit %.0f)", key, got, budget, limit)
	}
}

func TestAllocBudget(t *testing.T) {
	budgets := allocBudgets(t)

	srcStd := dataset.Dense([]int{256, 256}, 1)
	checkAllocBudget(t, budgets, "ChunkedStandard/workers=1", func() {
		tiling := tile.NewStandard([]int{8, 8}, 2)
		st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ChunkedStandardOpts(srcStd, 5, st, parallel.Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})

	srcNon := dataset.Dense([]int{256, 256}, 2)
	checkAllocBudget(t, budgets, "ChunkedNonStandard/workers=1", func() {
		tiling := tile.NewNonStandard(8, 2, 2)
		st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ChunkedNonStandardOpts(srcNon, 5, st,
			NonStdOptions{ZOrderCrest: true}, parallel.Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
}
