package transform

import (
	"math"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// countedStore builds MemStore -> Counting -> tile.Store.
func countedStore(t *testing.T, tiling tile.Tiling) (*tile.Store, *storage.Counting) {
	t.Helper()
	counting := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
	st, err := tile.NewStore(counting, tiling)
	if err != nil {
		t.Fatal(err)
	}
	return st, counting
}

// verifyAgainst checks every coefficient in the store against want.
func verifyAgainst(t *testing.T, st *tile.Store, want *ndarray.Array, tol float64) {
	t.Helper()
	bad := 0
	var worst float64
	want.Each(func(coords []int, v float64) {
		got, err := st.Get(coords)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(got - v); diff > tol {
			bad++
			if diff > worst {
				worst = diff
			}
		}
	})
	if bad > 0 {
		t.Fatalf("%d coefficients differ (worst %g)", bad, worst)
	}
}

func TestChunkedStandardCorrect(t *testing.T) {
	for _, c := range []struct {
		shape []int
		m, b  int
	}{
		{[]int{32}, 3, 2},
		{[]int{16, 16}, 2, 2},
		{[]int{16, 16}, 2, 1},
		{[]int{8, 8, 8}, 1, 2},
		{[]int{16, 16}, 4, 2}, // single chunk
	} {
		src := dataset.Dense(c.shape, 1)
		ns := make([]int, len(c.shape))
		for i, s := range c.shape {
			ns[i] = log2(s)
		}
		st, _ := countedStore(t, tile.NewStandard(ns, c.b))
		stats, err := ChunkedStandard(src, c.m, st)
		if err != nil {
			t.Fatalf("shape %v: %v", c.shape, err)
		}
		if stats.InputCoefReads != int64(src.Size()) {
			t.Errorf("shape %v: input reads %d, want %d", c.shape, stats.InputCoefReads, src.Size())
		}
		verifyAgainst(t, st, wavelet.TransformStandard(src), 1e-8)
	}
}

func TestChunkedNonStandardRowMajorCorrect(t *testing.T) {
	src := dataset.Dense([]int{16, 16}, 2)
	st, _ := countedStore(t, tile.NewNonStandard(4, 2, 2))
	stats, err := ChunkedNonStandard(src, 2, st, NonStdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Chunks != 16 {
		t.Errorf("chunks = %d", stats.Chunks)
	}
	verifyAgainst(t, st, wavelet.TransformNonStandard(src), 1e-8)
}

func TestChunkedNonStandardCrestCorrect(t *testing.T) {
	for _, c := range []struct{ n, d, m, b int }{
		{4, 2, 2, 2},
		{4, 2, 1, 2},
		{3, 3, 1, 1},
		{5, 1, 2, 2},
		{4, 2, 0, 2}, // single-cell chunks
	} {
		shape := make([]int, c.d)
		for i := range shape {
			shape[i] = 1 << uint(c.n)
		}
		src := dataset.Dense(shape, 3)
		st, _ := countedStore(t, tile.NewNonStandard(c.n, c.d, c.b))
		_, err := ChunkedNonStandard(src, c.m, st, NonStdOptions{ZOrderCrest: true})
		if err != nil {
			t.Fatalf("n=%d d=%d m=%d: %v", c.n, c.d, c.m, err)
		}
		verifyAgainst(t, st, wavelet.TransformNonStandard(src), 1e-8)
	}
}

func TestCrestIsWriteOnly(t *testing.T) {
	// Result 2: with z-order and the crest, the engine never reads a block.
	src := dataset.Dense([]int{32, 32}, 4)
	st, counting := countedStore(t, tile.NewNonStandard(5, 2, 2))
	_, err := ChunkedNonStandard(src, 2, st, NonStdOptions{ZOrderCrest: true})
	if err != nil {
		t.Fatal(err)
	}
	stats := counting.Stats()
	if stats.Reads != 0 {
		t.Errorf("crest engine performed %d reads, want 0", stats.Reads)
	}
	// Every block is written exactly once: writes == blocks touched.
	if stats.Writes > int64(st.Tiling().NumBlocks()) {
		t.Errorf("writes %d exceed total blocks %d", stats.Writes, st.Tiling().NumBlocks())
	}
}

func TestCrestBeatsRowMajorIO(t *testing.T) {
	src := dataset.Dense([]int{32, 32}, 5)
	stZ, cZ := countedStore(t, tile.NewNonStandard(5, 2, 2))
	if _, err := ChunkedNonStandard(src, 1, stZ, NonStdOptions{ZOrderCrest: true}); err != nil {
		t.Fatal(err)
	}
	stR, cR := countedStore(t, tile.NewNonStandard(5, 2, 2))
	if _, err := ChunkedNonStandard(src, 1, stR, NonStdOptions{}); err != nil {
		t.Fatal(err)
	}
	if cZ.Stats().Total() >= cR.Stats().Total() {
		t.Errorf("z-order crest I/O %d should beat row-major %d", cZ.Stats().Total(), cR.Stats().Total())
	}
}

func TestChunkedStandardIOScalesWithMemory(t *testing.T) {
	// Result 1: larger chunks (more memory) => fewer split I/Os.
	src := dataset.Dense([]int{64, 64}, 6)
	tiling := tile.NewSequential([]int{64, 64}, 1) // coefficient granularity
	var prev int64 = 1 << 62
	for _, m := range []int{1, 2, 3, 4} {
		counting := storage.NewCounting(storage.NewMemStore(1))
		st, err := tile.NewStore(counting, tiling)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ChunkedStandard(src, m, st); err != nil {
			t.Fatal(err)
		}
		total := counting.Stats().Total()
		if total > prev {
			t.Errorf("m=%d: I/O %d increased over smaller memory %d", m, total, prev)
		}
		prev = total
	}
}

func TestVitterCorrect(t *testing.T) {
	src := dataset.Dense([]int{16, 8}, 7)
	out := storage.NewCounting(storage.NewMemStore(4))
	stats, err := Vitter(src, 64, out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputCoefReads != int64(src.Size()) {
		t.Errorf("input reads = %d", stats.InputCoefReads)
	}
	// Read back through a fresh sequential store view.
	st, err := tile.NewStore(out, tile.NewSequential([]int{16, 8}, 4))
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainst(t, st, wavelet.TransformStandard(src), 1e-8)
}

func TestVitterMemorySensitivity(t *testing.T) {
	// More memory must not increase Vitter's I/O, and should reduce it
	// substantially between starved and generous settings.
	src := dataset.Dense([]int{32, 32}, 8)
	measure := func(mem int) int64 {
		counting := storage.NewCounting(storage.NewMemStore(8))
		if _, err := Vitter(src, mem, counting, 8); err != nil {
			t.Fatal(err)
		}
		return counting.Stats().Total()
	}
	starved := measure(16)
	generous := measure(1024)
	if generous > starved {
		t.Errorf("generous memory I/O %d exceeds starved %d", generous, starved)
	}
	if starved == generous {
		t.Logf("warning: Vitter I/O flat in memory (%d)", starved)
	}
}

func TestShiftSplitBeatsVitter(t *testing.T) {
	// The headline claim of §6.1 at block granularity.
	shape := []int{32, 32}
	src := dataset.Dense(shape, 9)
	b := 2
	blockSize := 1 << uint(b*2)

	stS, cS := countedStore(t, tile.NewStandard([]int{5, 5}, b))
	if _, err := ChunkedStandard(src, 3, stS); err != nil {
		t.Fatal(err)
	}
	stN, cN := countedStore(t, tile.NewNonStandard(5, 2, b))
	if _, err := ChunkedNonStandard(src, 3, stN, NonStdOptions{ZOrderCrest: true}); err != nil {
		t.Fatal(err)
	}
	cV := storage.NewCounting(storage.NewMemStore(blockSize))
	if _, err := Vitter(src, 8*8, cV, blockSize); err != nil {
		t.Fatal(err)
	}
	if cS.Stats().Total() >= cV.Stats().Total() {
		t.Errorf("shift-split standard %d should beat Vitter %d", cS.Stats().Total(), cV.Stats().Total())
	}
	if cN.Stats().Total() >= cS.Stats().Total() {
		t.Errorf("non-standard crest %d should beat standard %d", cN.Stats().Total(), cS.Stats().Total())
	}
}

func TestChunkEdgeTooLarge(t *testing.T) {
	src := ndarray.New(8, 8)
	st, _ := countedStore(t, tile.NewStandard([]int{3, 3}, 2))
	if _, err := ChunkedStandard(src, 4, st); err == nil {
		t.Error("oversized chunk accepted")
	}
}

func TestNonStandardRejectsNonCubic(t *testing.T) {
	src := ndarray.New(8, 16)
	st, _ := countedStore(t, tile.NewNonStandard(3, 2, 2))
	if _, err := ChunkedNonStandard(src, 1, st, NonStdOptions{}); err == nil {
		t.Error("non-cubic dataset accepted")
	}
}

func TestCrestMemoryBound(t *testing.T) {
	// The crest engine's extra memory should stay near
	// (2^d - 1) log(N/M) * B^d, far below the dataset size.
	src := dataset.Dense([]int{64, 64}, 10)
	st, _ := countedStore(t, tile.NewNonStandard(6, 2, 2))
	stats, err := ChunkedNonStandard(src, 2, st, NonStdOptions{ZOrderCrest: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxCrestMemory >= src.Size()/4 {
		t.Errorf("crest memory %d too close to dataset size %d", stats.MaxCrestMemory, src.Size())
	}
}

func log2(x int) int {
	n := 0
	for 1<<uint(n) < x {
		n++
	}
	return n
}

func TestStandardIOTracksPaperFormula(t *testing.T) {
	// Result 1: measured coefficient I/O must stay within a small constant
	// factor of N^d/M^d * (M + log(N/M))^d across a chunk-size sweep.
	src := dataset.Dense([]int{64, 64}, 20)
	for _, m := range []int{1, 2, 3, 4} {
		counting := storage.NewCounting(storage.NewMemStore(1))
		st, err := tile.NewStore(counting, tile.NewSequential([]int{64, 64}, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ChunkedStandard(src, m, st); err != nil {
			t.Fatal(err)
		}
		measured := float64(counting.Stats().Total())
		M := float64(int(1) << uint(m))
		logNM := float64(6 - m)
		formula := (4096 / (M * M)) * (M + logNM) * (M + logNM)
		ratio := measured / formula
		if ratio < 0.5 || ratio > 4 {
			t.Errorf("m=%d: measured %d vs formula %.0f (ratio %.2f) outside [0.5, 4]",
				m, counting.Stats().Total(), formula, ratio)
		}
	}
}

func TestCrestIOIsExactlyOptimal(t *testing.T) {
	// Result 2 at coefficient granularity: exactly N^d writes, 0 reads.
	src := dataset.Dense([]int{32, 32}, 21)
	counting := storage.NewCounting(storage.NewMemStore(1))
	st, err := tile.NewStore(counting, tile.NewSequential([]int{32, 32}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChunkedNonStandard(src, 2, st, NonStdOptions{ZOrderCrest: true}); err != nil {
		t.Fatal(err)
	}
	stats := counting.Stats()
	if stats.Reads != 0 || stats.Writes != 1024 {
		t.Errorf("crest I/O = %+v, want exactly 0 reads and 1024 writes", stats)
	}
}
