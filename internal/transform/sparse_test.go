package transform

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// sparseBlob builds a dataset that is zero except in one quadrant.
func sparseBlob(n int) *ndarray.Array {
	a := ndarray.New(n, n)
	blob := dataset.Dense([]int{n / 4, n / 4}, 1)
	a.SubPaste(blob, []int{0, 0})
	return a
}

func TestSparseStandardCorrectAndCheaper(t *testing.T) {
	src := sparseBlob(32)
	dense := dataset.Dense([]int{32, 32}, 2)

	measure := func(data *ndarray.Array) (int64, Stats) {
		cnt := storage.NewCounting(storage.NewMemStore(16))
		st, err := tile.NewStore(cnt, tile.NewStandard([]int{5, 5}, 2))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := ChunkedStandard(data, 2, st)
		if err != nil {
			t.Fatal(err)
		}
		verifyAgainst(t, st, wavelet.TransformStandard(data), 1e-8)
		return cnt.Stats().Total(), stats
	}
	sparseIO, sparseStats := measure(src)
	denseIO, denseStats := measure(dense)
	if sparseStats.SkippedChunks == 0 {
		t.Fatal("no chunks skipped on a 15/16-zero dataset")
	}
	if denseStats.SkippedChunks != 0 {
		t.Error("dense dataset skipped chunks")
	}
	if float64(sparseIO) > 0.6*float64(denseIO) {
		t.Errorf("sparse I/O %d not clearly below dense %d", sparseIO, denseIO)
	}
}

func TestSparseCrestCorrectAndSkipsZeroBlocks(t *testing.T) {
	src := sparseBlob(32)
	cnt := storage.NewCounting(storage.NewMemStore(16))
	st, err := tile.NewStore(cnt, tile.NewNonStandard(5, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ChunkedNonStandard(src, 2, st, NonStdOptions{ZOrderCrest: true})
	if err != nil {
		t.Fatal(err)
	}
	// Capture engine I/O before verification adds its own reads.
	engineIO := cnt.Stats()
	verifyAgainst(t, st, wavelet.TransformNonStandard(src), 1e-8)
	if stats.SkippedChunks != 60 { // 64 chunks; the 8x8 blob covers 4
		t.Errorf("skipped %d chunks, want 60", stats.SkippedChunks)
	}
	// All-zero blocks must never be written: writes well below total blocks.
	if engineIO.Writes*2 > int64(st.Tiling().NumBlocks()) {
		t.Errorf("wrote %d of %d blocks for a mostly-zero dataset", engineIO.Writes, st.Tiling().NumBlocks())
	}
	if engineIO.Reads != 0 {
		t.Error("crest engine read blocks")
	}
}

func TestSparseRowMajorCorrect(t *testing.T) {
	src := sparseBlob(16)
	cnt := storage.NewCounting(storage.NewMemStore(16))
	st, err := tile.NewStore(cnt, tile.NewNonStandard(4, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ChunkedNonStandard(src, 1, st, NonStdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainst(t, st, wavelet.TransformNonStandard(src), 1e-8)
	if stats.SkippedChunks == 0 {
		t.Error("row-major engine skipped nothing")
	}
}

func TestAllZeroDatasetCostsAlmostNothing(t *testing.T) {
	src := ndarray.New(32, 32)
	cnt := storage.NewCounting(storage.NewMemStore(16))
	st, err := tile.NewStore(cnt, tile.NewStandard([]int{5, 5}, 2))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ChunkedStandard(src, 2, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedChunks != stats.Chunks {
		t.Errorf("skipped %d of %d chunks", stats.SkippedChunks, stats.Chunks)
	}
	if cnt.Stats().Total() != 0 {
		t.Errorf("all-zero dataset cost %d block I/Os", cnt.Stats().Total())
	}
}

func TestOnceWriterSuppressesZeroBlocks(t *testing.T) {
	tiling := tile.NewNonStandard(4, 2, 2)
	cnt := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
	st, err := tile.NewStore(cnt, tiling)
	if err != nil {
		t.Fatal(err)
	}
	// Writing an all-zero transform through WriteArray must write nothing.
	if err := tile.WriteArray(st, ndarray.New(16, 16)); err != nil {
		t.Fatal(err)
	}
	if cnt.Stats().Writes != 0 {
		t.Errorf("zero transform wrote %d blocks", cnt.Stats().Writes)
	}
	// And the store still reads back zeros.
	v, err := st.Get([]int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("read %g from suppressed block", v)
	}
}
