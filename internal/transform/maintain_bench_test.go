package transform

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/parallel"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// The maintenance benchmarks measure full chunked-transform runs at several
// worker counts; BENCH_maintain.json records a baseline. Run with -benchmem:
// the flat kernels must not allocate per coefficient, so allocations stay
// proportional to the chunk count, not the cell count.

func benchWorkerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

func BenchmarkChunkedStandard(b *testing.B) {
	src := dataset.Dense([]int{256, 256}, 1)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tiling := tile.NewStandard([]int{8, 8}, 2)
				st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ChunkedStandardOpts(src, 5, st, parallel.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChunkedNonStandard(b *testing.B) {
	src := dataset.Dense([]int{256, 256}, 2)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tiling := tile.NewNonStandard(8, 2, 2)
				st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ChunkedNonStandardOpts(src, 5, st,
					NonStdOptions{ZOrderCrest: true}, parallel.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
