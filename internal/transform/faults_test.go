package transform

import (
	"errors"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// faultyStore builds a tile.Store over a Faulty wrapper.
func faultyStore(t *testing.T, tiling tile.Tiling) (*tile.Store, *storage.Faulty) {
	t.Helper()
	f := storage.NewFaulty(storage.NewMemStore(tiling.BlockSize()))
	st, err := tile.NewStore(f, tiling)
	if err != nil {
		t.Fatal(err)
	}
	return st, f
}

func TestChunkedStandardSurfacesReadFault(t *testing.T) {
	src := dataset.Dense([]int{16, 16}, 1)
	st, f := faultyStore(t, tile.NewStandard([]int{4, 4}, 2))
	f.FailReadAfter(5)
	_, err := ChunkedStandard(src, 2, st)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestChunkedStandardSurfacesWriteFault(t *testing.T) {
	src := dataset.Dense([]int{16, 16}, 1)
	st, f := faultyStore(t, tile.NewStandard([]int{4, 4}, 2))
	f.FailWriteAfter(3)
	_, err := ChunkedStandard(src, 2, st)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestCrestEngineSurfacesWriteFault(t *testing.T) {
	src := dataset.Dense([]int{16, 16}, 2)
	st, f := faultyStore(t, tile.NewNonStandard(4, 2, 2))
	f.FailWriteAfter(2)
	_, err := ChunkedNonStandard(src, 1, st, NonStdOptions{ZOrderCrest: true})
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestRowMajorEngineSurfacesFault(t *testing.T) {
	src := dataset.Dense([]int{16, 16}, 3)
	st, f := faultyStore(t, tile.NewNonStandard(4, 2, 2))
	f.FailReadAfter(4)
	_, err := ChunkedNonStandard(src, 1, st, NonStdOptions{})
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestVitterSurfacesFault(t *testing.T) {
	src := dataset.Dense([]int{8, 8}, 4)
	f := storage.NewFaulty(storage.NewMemStore(4))
	f.FailWriteAfter(2)
	_, err := Vitter(src, 16, f, 4)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}
