// Package transform implements the I/O-efficient transformation of massive
// multidimensional datasets (paper §5.1) and the external-memory baseline it
// is compared against.
//
// Three engines are provided, all operating against counted block storage so
// that the experiments of §6.1 can be regenerated:
//
//   - ChunkedStandard (Result 1): transform memory-sized chunks and merge
//     them into the standard-form transform with SHIFT (write-once detail
//     subtrees) and SPLIT (read-modify-write root-path contributions);
//   - ChunkedNonStandard (Result 2): the same for the non-standard form;
//     with z-ordered chunk access and an in-memory crest the split traffic
//     disappears entirely and every output block is written exactly once;
//   - Vitter (the baseline of [12, 13]): a straightforward external-memory
//     standard transformation that sweeps the working array level by level
//     per dimension through an LRU buffer pool, with no tiling and no
//     SHIFT-SPLIT.
package transform

import (
	"fmt"
	"sync"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/parallel"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
	"github.com/shiftsplit/shiftsplit/internal/zorder"
)

// Stats reports what an engine did. Block-level I/O on the destination
// store is measured by the storage.Counting wrapper the caller installs;
// Stats carries the engine-side quantities.
type Stats struct {
	InputCoefReads int64 // cells read from the source dataset
	Chunks         int   // chunks processed
	SkippedChunks  int   // all-zero chunks skipped (the §5.1 sparse-data saving)
	MaxCrestMemory int   // peak buffered coefficients beyond the chunk (non-standard crest engine)
}

// allZero reports whether every cell of a is zero. A zero chunk contributes
// nothing to the transform (linearity), so the engines skip its output I/O
// entirely — the paper's accommodation for sparse data.
func allZero(a *ndarray.Array) bool {
	for _, v := range a.Data() {
		if v != 0 {
			return false
		}
	}
	return true
}

func checkChunkable(src *ndarray.Array, m int) ([]int, error) {
	shape := src.Shape()
	edge := 1 << uint(m)
	for _, s := range shape {
		if !bitutil.IsPow2(s) {
			return nil, fmt.Errorf("transform: extent %d is not a power of two", s)
		}
		if s < edge {
			return nil, fmt.Errorf("transform: chunk edge %d exceeds extent %d", edge, s)
		}
	}
	return shape, nil
}

// chunkResult is one transformed chunk on its way from a worker to the
// ordered consumer: its bucketed SHIFT-SPLIT deltas plus the engine-side
// statistics it contributes. scratch is the pooled per-chunk working state
// backing buckets; the consumer releases it once the buckets have landed.
type chunkResult struct {
	coefReads int64
	zero      bool
	avg       float64 // chunk average (non-standard crest engine)
	buckets   []tile.Bucket
	scratch   *chunkScratch
}

// chunkScratch is the reusable per-chunk working state of a chunked engine:
// the chunk buffer itself (filled by SubCopyInto, transformed in place), the
// wavelet scratch, the delta BucketSet, and the start-coordinate slice. A
// sync.Pool bounds the population at the worker count plus the in-flight
// window, which puts the engines' steady state on an allocation diet: no
// chunk-sized or tile-sized allocation after warm-up.
type chunkScratch struct {
	chunk *ndarray.Array
	ws    *wavelet.Scratch
	set   *tile.BucketSet
	start []int
}

// newChunkPool builds the scratch pool for chunks of the given shape
// bucketing into tiles of blockSize slots.
func newChunkPool(chunkShape []int, blockSize int) *sync.Pool {
	return &sync.Pool{New: func() any {
		return &chunkScratch{
			chunk: ndarray.New(chunkShape...),
			ws:    wavelet.NewScratch(),
			set:   tile.NewBucketSet(blockSize),
			start: make([]int, len(chunkShape)),
		}
	}}
}

// release resets the scratch's bucket state and returns it to the pool.
func (sc *chunkScratch) release(pool *sync.Pool) {
	sc.set.Reset()
	pool.Put(sc)
}

// unflatten decomposes a row-major chunk sequence number over grid into a
// fresh position slice.
func unflatten(seq int, grid []int) []int {
	pos := make([]int, len(grid))
	for i := len(grid) - 1; i >= 0; i-- {
		pos[i] = seq % grid[i]
		seq /= grid[i]
	}
	return pos
}

// ChunkedStandard transforms src into the standard form held by out, using
// memory for one chunk of edge 2^m per dimension. Each chunk is transformed
// in memory and merged with SHIFT-SPLIT; every touched tile costs one read
// and one write per chunk (no cross-chunk caching, matching the paper's
// Result 1 analysis). Chunk transforms run on the default worker pool; see
// ChunkedStandardOpts.
func ChunkedStandard(src *ndarray.Array, m int, out *tile.Store) (Stats, error) {
	return ChunkedStandardOpts(src, m, out, parallel.Options{})
}

// ChunkedStandardOpts is ChunkedStandard with an explicit worker-pool
// configuration. Chunk transforms and SHIFT-SPLIT bucketing run on
// opts.Workers goroutines; deltas are applied tile-sharded in chunk order,
// so results are bit-identical and I/O counts equal for every worker count
// (Workers == 1 is the fully sequential fallback).
func ChunkedStandardOpts(src *ndarray.Array, m int, out *tile.Store, opts parallel.Options) (Stats, error) {
	shape, err := checkChunkable(src, m)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	edge := 1 << uint(m)
	d := len(shape)
	grid := make([]int, d)
	nChunks := 1
	for i, s := range shape {
		grid[i] = s / edge
		nChunks *= grid[i]
	}
	chunkShape := make([]int, d)
	for i := range chunkShape {
		chunkShape[i] = edge
	}
	applier := parallel.NewApplier(out, opts)
	pool := newChunkPool(chunkShape, out.Tiling().BlockSize())
	produce := func(seq int) (chunkResult, error) {
		pos := unflatten(seq, grid)
		sc := pool.Get().(*chunkScratch)
		for i := range pos {
			sc.start[i] = pos[i] * edge
		}
		src.SubCopyInto(sc.chunk, sc.start)
		res := chunkResult{coefReads: int64(sc.chunk.Size()), scratch: sc}
		if allZero(sc.chunk) {
			res.zero = true
			return res, nil
		}
		wavelet.TransformStandardInPlace(sc.chunk, sc.ws)
		tile.AccumulateEmbedStandard(out.Tiling(), shape, dyadic.NewCubeRange(m, pos), sc.chunk, sc.set)
		res.buckets = sc.set.Buckets()
		return res, nil
	}
	consume := func(seq int, res chunkResult) error {
		st.InputCoefReads += res.coefReads
		st.Chunks++
		sc := res.scratch
		if res.zero {
			st.SkippedChunks++
			sc.release(pool)
			return nil
		}
		return applier.ApplyReleasing(res.buckets, func() { sc.release(pool) })
	}
	err = parallel.Run(nChunks, opts, produce, consume)
	if cerr := applier.Close(); err == nil {
		err = cerr
	}
	return st, err
}

// NonStdOptions selects the chunk access pattern of ChunkedNonStandard.
type NonStdOptions struct {
	// ZOrderCrest enables the Result-2 discipline: chunks are visited in
	// z-order and chunk averages are folded bottom-up through an in-memory
	// crest of (2^d-1)*log(N/M) coefficients, so no split contribution ever
	// hits storage and every output block is written exactly once.
	ZOrderCrest bool
}

// ChunkedNonStandard transforms a cubic src into the non-standard form held
// by out, with memory for one chunk of edge 2^m. Without options the chunks
// are visited in row-major order and split contributions are read-modify-
// written per chunk; with ZOrderCrest the engine achieves the optimal
// write-only I/O of Result 2.
func ChunkedNonStandard(src *ndarray.Array, m int, out *tile.Store, opts NonStdOptions) (Stats, error) {
	return ChunkedNonStandardOpts(src, m, out, opts, parallel.Options{})
}

// ChunkedNonStandardOpts is ChunkedNonStandard with an explicit worker-pool
// configuration (see ChunkedStandardOpts for the parallel contract). In the
// z-order crest engine only the chunk transforms and SHIFT bucketing are
// parallel; the crest folds and the write-once block accounting stay on the
// single consumer goroutine, in z-order, which Result 2's zero-read,
// one-write-per-block discipline requires.
func ChunkedNonStandardOpts(src *ndarray.Array, m int, out *tile.Store, opts NonStdOptions, popts parallel.Options) (Stats, error) {
	shape, err := checkChunkable(src, m)
	if err != nil {
		return Stats{}, err
	}
	for _, s := range shape[1:] {
		if s != shape[0] {
			return Stats{}, fmt.Errorf("transform: non-standard form requires a cubic dataset, got %v", shape)
		}
	}
	n := bitutil.Log2(shape[0])
	if opts.ZOrderCrest {
		return chunkedNonStdCrest(src, n, m, out, popts)
	}
	return chunkedNonStdRowMajor(src, n, m, out, popts)
}

func chunkedNonStdRowMajor(src *ndarray.Array, n, m int, out *tile.Store, popts parallel.Options) (Stats, error) {
	var st Stats
	d := src.Dims()
	edge := 1 << uint(m)
	side := 1 << uint(n-m)
	chunkShape := make([]int, d)
	for i := range chunkShape {
		chunkShape[i] = edge
	}
	grid := make([]int, d)
	nChunks := 1
	for i := range grid {
		grid[i] = side
		nChunks *= side
	}
	origin := make([]int, d)
	ph := cubicShape(n, d)
	applier := parallel.NewApplier(out, popts)
	pool := newChunkPool(chunkShape, out.Tiling().BlockSize())
	produce := func(seq int) (chunkResult, error) {
		pos := unflatten(seq, grid)
		sc := pool.Get().(*chunkScratch)
		for i := range pos {
			sc.start[i] = pos[i] * edge
		}
		src.SubCopyInto(sc.chunk, sc.start)
		res := chunkResult{coefReads: int64(sc.chunk.Size()), scratch: sc}
		if allZero(sc.chunk) {
			res.zero = true
			return res, nil
		}
		wavelet.TransformNonStandardInPlace(sc.chunk, sc.ws)
		tile.AccumulateShiftNonStandard(out.Tiling(), ph, m, pos, sc.chunk, sc.set)
		tile.AccumulateSplitNonStandard(out.Tiling(), ph, m, pos, sc.chunk.At(origin...), sc.set)
		res.buckets = sc.set.Buckets()
		return res, nil
	}
	consume := func(seq int, res chunkResult) error {
		st.InputCoefReads += res.coefReads
		st.Chunks++
		sc := res.scratch
		if res.zero {
			st.SkippedChunks++
			sc.release(pool)
			return nil
		}
		return applier.ApplyReleasing(res.buckets, func() { sc.release(pool) })
	}
	err := parallel.Run(nChunks, popts, produce, consume)
	if cerr := applier.Close(); err == nil {
		err = cerr
	}
	return st, err
}

// cubicShape returns the shape of the cubic destination transform.
func cubicShape(n, d int) []int {
	shape := make([]int, d)
	for i := range shape {
		shape[i] = 1 << uint(n)
	}
	return shape
}

// Crest is the in-memory bottom-up merger of Result 2: for every level above
// the chunks it buffers the 2^d child averages of the currently open node;
// when the last child arrives it emits the node's 2^d - 1 details (in the
// Mallat coordinates of the enclosing cubic transform) and pushes the node
// average one level up. It is also the engine of the non-standard stream
// synopsis (Result 5), which is why it is exported.
type Crest struct {
	d, n, m int
	// buf[j-m-1] holds the child averages accumulating for the open node at
	// level j; count[j-m-1] tracks how many have arrived.
	buf   [][]float64
	count []int
	emit  func(coords []int, v float64) error
	root  float64
	// Preallocated per-depth scratch: Push runs once per chunk (and
	// recursively per completed node), so its coordinate slices must not be
	// rebuilt per call. coords is shared across depths — emit must not
	// retain it, which every emitter (OnceWriter.Set, the stream synopsis)
	// honors; parents is per-depth because a completed node passes its
	// parent position into the recursive Push.
	parents [][]int
	coords  []int
	origin  []int
}

// Root returns the overall average after the final Push.
func (c *Crest) Root() float64 { return c.root }

// NewCrest creates a crest for chunks of edge 2^m inside a cubic domain of
// edge 2^n with d dimensions; emit receives each finalized coefficient. The
// final call emits the overall average at the origin.
func NewCrest(d, n, m int, emit func(coords []int, v float64) error) *Crest {
	levels := n - m
	c := &Crest{d: d, n: n, m: m, emit: emit, count: make([]int, levels)}
	c.buf = make([][]float64, levels)
	c.parents = make([][]int, levels)
	for i := range c.buf {
		c.buf[i] = make([]float64, 1<<uint(d))
		c.parents[i] = make([]int, d)
	}
	c.coords = make([]int, d)
	c.origin = make([]int, d)
	return c
}

// Push delivers the average of the level-(m+depth) cell at position pos
// (z-order guarantees siblings arrive consecutively). External callers
// always use depth 0 (a chunk average); recursion uses higher depths.
func (c *Crest) Push(depth int, pos []int, avg float64) error {
	if c.m+depth == c.n {
		c.root = avg
		return c.emit(c.origin, avg)
	}
	slot := 0
	for i := 0; i < c.d; i++ {
		slot |= (pos[i] & 1) << uint(i)
	}
	level := depth // index into buf: node being built at level m+depth+1
	c.buf[level][slot] = avg
	c.count[level]++
	if c.count[level] < 1<<uint(c.d) {
		return nil
	}
	// Node complete: compute its details and average.
	c.count[level] = 0
	j := c.m + depth + 1
	parent := c.parents[depth]
	for i := 0; i < c.d; i++ {
		parent[i] = pos[i] >> 1
	}
	den := float64(int(1) << uint(c.d))
	base := 1 << uint(c.n-j)
	coords := c.coords
	var parentAvg float64
	for mask := 0; mask < 1<<uint(c.d); mask++ {
		sum := 0.0
		for q := 0; q < 1<<uint(c.d); q++ {
			w := 1.0
			for i := 0; i < c.d; i++ {
				if mask>>uint(i)&1 == 1 && q>>uint(i)&1 == 1 {
					w = -w
				}
			}
			sum += w * c.buf[level][q]
		}
		sum /= den
		if mask == 0 {
			parentAvg = sum
			continue
		}
		for i := 0; i < c.d; i++ {
			coords[i] = parent[i]
			if mask>>uint(i)&1 == 1 {
				coords[i] += base
			}
		}
		if err := c.emit(coords, sum); err != nil {
			return err
		}
	}
	return c.Push(depth+1, parent, parentAvg)
}

func chunkedNonStdCrest(src *ndarray.Array, n, m int, out *tile.Store, popts parallel.Options) (Stats, error) {
	var st Stats
	d := src.Dims()
	edge := 1 << uint(m)
	side := 1 << uint(n-m)
	chunkShape := make([]int, d)
	for i := range chunkShape {
		chunkShape[i] = edge
	}
	caps := tile.BlockCapacities(src.Shape(), out.Tiling())
	writer := tile.NewOnceWriter(out, caps)
	cr := NewCrest(d, n, m, writer.Set)
	ph := cubicShape(n, d)
	zeroHat := ndarray.New(chunkShape...) // read-only stand-in for all-zero chunks
	// The z-order chunk schedule, fixed up front so workers can transform
	// ahead while the consumer folds crest averages strictly in order.
	positions := make([][]int, 0, bitutil.IntPow(side, d))
	zorder.Curve(d, side, func(pos []int) {
		positions = append(positions, append([]int(nil), pos...))
	})
	maxPending := 0
	origin := make([]int, d)
	pool := newChunkPool(chunkShape, out.Tiling().BlockSize())
	produce := func(seq int) (chunkResult, error) {
		pos := positions[seq]
		sc := pool.Get().(*chunkScratch)
		for i := range pos {
			sc.start[i] = pos[i] * edge
		}
		src.SubCopyInto(sc.chunk, sc.start)
		res := chunkResult{coefReads: int64(sc.chunk.Size()), scratch: sc}
		// A zero chunk still participates in the crest (its siblings need
		// its average) and its zero details must still be recorded so that
		// boundary blocks complete — but the writer never materializes or
		// writes blocks that stay entirely zero.
		hat := zeroHat
		if allZero(sc.chunk) {
			res.zero = true
		} else {
			wavelet.TransformNonStandardInPlace(sc.chunk, sc.ws)
			hat = sc.chunk
			res.avg = hat.At(origin...)
		}
		// Details of the chunk subtree are final: bucket them for the
		// write-once sink.
		tile.AccumulateShiftNonStandard(out.Tiling(), ph, m, pos, hat, sc.set)
		res.buckets = sc.set.Buckets()
		return res, nil
	}
	consume := func(seq int, res chunkResult) error {
		st.InputCoefReads += res.coefReads
		st.Chunks++
		if res.zero {
			st.SkippedChunks++
		}
		for i := range res.buckets {
			b := &res.buckets[i]
			if err := writer.MergeBucket(b.Block, b.Deltas, b.Touches); err != nil {
				res.scratch.release(pool)
				return err
			}
		}
		// MergeBucket copies what it keeps, so the scratch (and the bucket
		// deltas it backs) recycles before the crest fold.
		res.scratch.release(pool)
		// The chunk average climbs the crest instead of touching storage.
		if err := cr.Push(0, positions[seq], res.avg); err != nil {
			return err
		}
		if p := writer.Pending() * out.Tiling().BlockSize(); p > maxPending {
			maxPending = p
		}
		return nil
	}
	if err := parallel.Run(len(positions), popts, produce, consume); err != nil {
		return st, err
	}
	if err := writer.Flush(); err != nil {
		return st, err
	}
	st.MaxCrestMemory = maxPending + (1<<uint(d))*(n-m)
	return st, nil
}

// Vitter is the baseline of [12, 13]: it materializes the working array on
// storage and performs the standard decomposition dimension by dimension,
// one level at a time, through an LRU buffer pool of memCoefs coefficients.
// No tiling and no SHIFT-SPLIT: every level pass streams the current
// averages region through the pool, with whatever locality the row-major
// block layout affords.
func Vitter(src *ndarray.Array, memCoefs int, out storage.BlockStore, blockSize int) (Stats, error) {
	var st Stats
	shape := src.Shape()
	for _, s := range shape {
		if !bitutil.IsPow2(s) {
			return st, fmt.Errorf("transform: extent %d is not a power of two", s)
		}
	}
	poolBlocks := bitutil.Max(1, memCoefs/blockSize)
	pool := storage.NewBufferPool(out, poolBlocks)
	flat := tile.NewSequential(shape, blockSize)
	stf, err := tile.NewStore(pool, flat)
	if err != nil {
		return st, err
	}
	// Load the dataset.
	var loadErr error
	src.Each(func(coords []int, v float64) {
		if loadErr != nil {
			return
		}
		st.InputCoefReads++
		loadErr = stf.Set(coords, v)
	})
	if loadErr != nil {
		return st, loadErr
	}
	// Level passes, dimension by dimension, operating in the compacted
	// in-place layout (averages at low indices along the active dimension).
	d := len(shape)
	coords := make([]int, d)
	for dim := 0; dim < d; dim++ {
		n := bitutil.Log2(shape[dim])
		for j := 1; j <= n; j++ {
			region := shape[dim] >> uint(j-1)
			half := region / 2
			// For every fiber position (other dims full range), combine
			// pairs along dim into average + detail.
			var rec func(i int) error
			rec = func(i int) error {
				if i == d {
					// Read the region along dim, transform one level,
					// write back.
					line := make([]float64, region)
					for x := 0; x < region; x++ {
						coords[dim] = x
						v, err := stf.Get(coords)
						if err != nil {
							return err
						}
						line[x] = v
					}
					for k := 0; k < half; k++ {
						avg := (line[2*k] + line[2*k+1]) / 2
						det := (line[2*k] - line[2*k+1]) / 2
						coords[dim] = k
						if err := stf.Set(coords, avg); err != nil {
							return err
						}
						coords[dim] = half + k
						if err := stf.Set(coords, det); err != nil {
							return err
						}
					}
					return nil
				}
				if i == dim {
					return rec(i + 1)
				}
				for v := 0; v < shape[i]; v++ {
					coords[i] = v
					if err := rec(i + 1); err != nil {
						return err
					}
				}
				return nil
			}
			if err := rec(0); err != nil {
				return st, err
			}
		}
	}
	if err := pool.Flush(); err != nil {
		return st, err
	}
	return st, nil
}
