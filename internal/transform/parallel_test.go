package transform

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/parallel"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

func workerCounts() []int {
	counts := []int{1, 2, 3}
	if n := runtime.NumCPU(); n > 3 {
		counts = append(counts, n)
	}
	return counts
}

// readAll returns every block of the store, for exact comparison.
func readAll(t *testing.T, st *tile.Store) [][]float64 {
	t.Helper()
	out := make([][]float64, st.Tiling().NumBlocks())
	for b := range out {
		data, err := st.ReadTile(b)
		if err != nil {
			t.Fatal(err)
		}
		out[b] = data
	}
	return out
}

func requireIdentical(t *testing.T, label string, want, got [][]float64) {
	t.Helper()
	for b := range want {
		for s := range want[b] {
			if want[b][s] != got[b][s] {
				t.Fatalf("%s: block %d slot %d: parallel %v != sequential %v (not bit-identical)",
					label, b, s, got[b][s], want[b][s])
			}
		}
	}
}

// TestChunkedStandardParallelBitIdentical runs the standard-form engine at
// several worker counts and requires bit-identical coefficients, identical
// engine stats, and identical block I/O counts versus the sequential run.
func TestChunkedStandardParallelBitIdentical(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		var src *ndarray.Array
		if sparse {
			src = dataset.Sparse([]int{32, 32}, 0.1, 5)
		} else {
			src = dataset.Dense([]int{32, 32}, 5)
		}
		run := func(workers int) ([][]float64, Stats, storage.Stats) {
			st, counting := countedStore(t, tile.NewStandard([]int{5, 5}, 2))
			stats, err := ChunkedStandardOpts(src, 2, st, parallel.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			return readAll(t, st), stats, counting.Stats()
		}
		wantBlocks, wantStats, wantIO := run(1)
		for _, workers := range workerCounts()[1:] {
			label := fmt.Sprintf("sparse=%v workers=%d", sparse, workers)
			gotBlocks, gotStats, gotIO := run(workers)
			requireIdentical(t, label, wantBlocks, gotBlocks)
			if gotStats != wantStats {
				t.Errorf("%s: stats %+v, sequential %+v", label, gotStats, wantStats)
			}
			if gotIO != wantIO {
				t.Errorf("%s: block I/O %+v, sequential %+v", label, gotIO, wantIO)
			}
		}
	}
}

// TestChunkedNonStandardParallelBitIdentical covers both non-standard engines
// (row-major and z-order crest).
func TestChunkedNonStandardParallelBitIdentical(t *testing.T) {
	for _, crest := range []bool{false, true} {
		for _, sparse := range []bool{false, true} {
			shape := []int{32, 32}
			var src *ndarray.Array
			if sparse {
				src = dataset.Sparse(shape, 0.1, 7)
			} else {
				src = dataset.Dense(shape, 7)
			}
			run := func(workers int) ([][]float64, Stats, storage.Stats) {
				st, counting := countedStore(t, tile.NewNonStandard(5, 2, 2))
				stats, err := ChunkedNonStandardOpts(src, 2, st,
					NonStdOptions{ZOrderCrest: crest}, parallel.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				return readAll(t, st), stats, counting.Stats()
			}
			wantBlocks, wantStats, wantIO := run(1)
			for _, workers := range workerCounts()[1:] {
				label := fmt.Sprintf("crest=%v sparse=%v workers=%d", crest, sparse, workers)
				gotBlocks, gotStats, gotIO := run(workers)
				requireIdentical(t, label, wantBlocks, gotBlocks)
				if gotStats != wantStats {
					t.Errorf("%s: stats %+v, sequential %+v", label, gotStats, wantStats)
				}
				if gotIO != wantIO {
					t.Errorf("%s: block I/O %+v, sequential %+v", label, gotIO, wantIO)
				}
			}
		}
	}
}

// TestParallelSerialApplyPreservesWriteSequence checks that with SerialApply
// the physical write order seen by the backing store is exactly the
// sequential engine's, which crash-campaign determinism relies on.
func TestParallelSerialApplyPreservesWriteSequence(t *testing.T) {
	src := dataset.Dense([]int{16, 16}, 11)
	run := func(workers int) []int {
		tiling := tile.NewStandard([]int{4, 4}, 2)
		rec := &writeRecorder{BlockStore: storage.NewMemStore(tiling.BlockSize())}
		st, err := tile.NewStore(rec, tiling)
		if err != nil {
			t.Fatal(err)
		}
		_, err = ChunkedStandardOpts(src, 2, st, parallel.Options{Workers: workers, SerialApply: true})
		if err != nil {
			t.Fatal(err)
		}
		return rec.order
	}
	want := run(1)
	got := run(4)
	if len(want) != len(got) {
		t.Fatalf("parallel made %d writes, sequential %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("write %d went to block %d, sequential wrote block %d", i, got[i], want[i])
		}
	}
}

type writeRecorder struct {
	storage.BlockStore
	order []int
}

func (w *writeRecorder) WriteBlock(id int, data []float64) error {
	w.order = append(w.order, id)
	return w.BlockStore.WriteBlock(id, data)
}
