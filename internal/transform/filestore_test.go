package transform

import (
	"path/filepath"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// TestEnginesAgainstRealFiles drives the chunked engines end-to-end against
// actual on-disk block files — the paper's "accurate implementations of the
// operations on real disks with real disk blocks" (§6) — then reopens the
// files cold and verifies every coefficient.
func TestEnginesAgainstRealFiles(t *testing.T) {
	dir := t.TempDir()
	src := dataset.Dense([]int{32, 32}, 42)

	t.Run("standard", func(t *testing.T) {
		tiling := tile.NewStandard([]int{5, 5}, 2)
		path := filepath.Join(dir, "std.blocks")
		fs, err := storage.NewFileStore(path, tiling.BlockSize())
		if err != nil {
			t.Fatal(err)
		}
		st, err := tile.NewStore(fs, tiling)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ChunkedStandard(src, 3, st); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen cold.
		fs2, err := storage.OpenFileStore(path, tiling.BlockSize())
		if err != nil {
			t.Fatal(err)
		}
		st2, err := tile.NewStore(fs2, tiling)
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		verifyAgainst(t, st2, wavelet.TransformStandard(src), 1e-8)
	})

	t.Run("non-standard-crest", func(t *testing.T) {
		tiling := tile.NewNonStandard(5, 2, 2)
		path := filepath.Join(dir, "nonstd.blocks")
		fs, err := storage.NewFileStore(path, tiling.BlockSize())
		if err != nil {
			t.Fatal(err)
		}
		st, err := tile.NewStore(fs, tiling)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ChunkedNonStandard(src, 2, st, NonStdOptions{ZOrderCrest: true}); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		fs2, err := storage.OpenFileStore(path, tiling.BlockSize())
		if err != nil {
			t.Fatal(err)
		}
		st2, err := tile.NewStore(fs2, tiling)
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		verifyAgainst(t, st2, wavelet.TransformNonStandard(src), 1e-8)
	})

	t.Run("vitter", func(t *testing.T) {
		path := filepath.Join(dir, "vitter.blocks")
		fs, err := storage.NewFileStore(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Vitter(src, 64, fs, 8); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}
		fs2, err := storage.OpenFileStore(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := tile.NewStore(fs2, tile.NewSequential([]int{32, 32}, 8))
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		verifyAgainst(t, st2, wavelet.TransformStandard(src), 1e-8)
	})
}
