package dataset

import (
	"testing"
)

func TestTemperatureDeterministic(t *testing.T) {
	shape := []int{8, 8, 4, 16}
	a := Temperature(shape, 7)
	b := Temperature(shape, 7)
	if !a.EqualApprox(b, 0) {
		t.Error("same seed should give identical cubes")
	}
	c := Temperature(shape, 8)
	if a.EqualApprox(c, 1e-12) {
		t.Error("different seeds should differ")
	}
}

func TestTemperaturePhysicalShape(t *testing.T) {
	shape := []int{16, 8, 8, 8}
	a := Temperature(shape, 1)
	// Equatorial cells should on average be warmer than polar cells,
	// and low altitude warmer than high altitude.
	avgRegion := func(start, sh []int) float64 {
		return a.SumRange(start, sh) / float64(sh[0]*sh[1]*sh[2]*sh[3])
	}
	equator := avgRegion([]int{0, 0, 0, 0}, []int{2, 8, 8, 8})
	pole := avgRegion([]int{14, 0, 0, 0}, []int{2, 8, 8, 8})
	if equator <= pole {
		t.Errorf("equator %g should exceed pole %g", equator, pole)
	}
	low := avgRegion([]int{0, 0, 0, 0}, []int{16, 8, 1, 8})
	high := avgRegion([]int{0, 0, 7, 0}, []int{16, 8, 1, 8})
	if low <= high {
		t.Errorf("low altitude %g should exceed high altitude %g", low, high)
	}
}

func TestTemperatureWrongDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("3-d shape did not panic")
		}
	}()
	Temperature([]int{4, 4, 4}, 1)
}

func TestPrecipitationSparseAndNonNegative(t *testing.T) {
	a := Precipitation([]int{8, 8, 64}, 3)
	zeros, neg := 0, 0
	for _, v := range a.Data() {
		if v == 0 {
			zeros++
		}
		if v < 0 {
			neg++
		}
	}
	if neg != 0 {
		t.Errorf("%d negative precipitation values", neg)
	}
	frac := float64(zeros) / float64(a.Size())
	if frac < 0.2 {
		t.Errorf("only %.0f%% zeros; precipitation should be sparse", frac*100)
	}
	if a.Sum() <= 0 {
		t.Error("no rain at all")
	}
}

func TestPrecipitationDeterministic(t *testing.T) {
	a := Precipitation([]int{8, 8, 32}, 5)
	b := Precipitation([]int{8, 8, 32}, 5)
	if !a.EqualApprox(b, 0) {
		t.Error("same seed should give identical cubes")
	}
}

func TestDenseShapeAgnostic(t *testing.T) {
	for _, shape := range [][]int{{16}, {8, 8}, {4, 4, 4}} {
		a := Dense(shape, 2)
		if a.Size() == 0 {
			t.Fatal("empty array")
		}
		// Smoothness plus noise: values bounded by #dims + noise margin.
		for _, v := range a.Data() {
			if v > float64(len(shape))+3 || v < -float64(len(shape))-3 {
				t.Fatalf("value %g out of expected envelope for %v", v, shape)
			}
		}
	}
}

func TestSparseDensity(t *testing.T) {
	a := Sparse([]int{64, 64}, 0.1, 9)
	nz := 0
	for _, v := range a.Data() {
		if v != 0 {
			nz++
		}
	}
	frac := float64(nz) / float64(a.Size())
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("non-zero fraction %.3f, want ~0.1", frac)
	}
}

func TestSparseDensityZeroAndOne(t *testing.T) {
	if Sparse([]int{16}, 0, 1).Sum() != 0 {
		t.Error("density 0 should be all zeros")
	}
	all := Sparse([]int{16}, 1, 1)
	for _, v := range all.Data() {
		if v == 0 {
			t.Error("density 1 left a zero cell")
			break
		}
	}
}

func TestRandomWalk(t *testing.T) {
	w := RandomWalk(1000, 4)
	if len(w) != 1000 {
		t.Fatalf("length %d", len(w))
	}
	w2 := RandomWalk(1000, 4)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("not deterministic")
		}
	}
	// Steps should be unit-normal-ish.
	var sumSq float64
	prev := 0.0
	for _, v := range w {
		d := v - prev
		sumSq += d * d
		prev = v
	}
	if avg := sumSq / 1000; avg < 0.7 || avg > 1.4 {
		t.Errorf("mean squared step %g, want ~1", avg)
	}
}

func TestZipfSkew(t *testing.T) {
	a := Zipf([]int{32, 32}, 1.5, 3)
	// The top 1% of cells must carry the majority of the mass.
	vals := append([]float64(nil), a.Data()...)
	// selection: find the 10 largest by simple scan
	total := 0.0
	for _, v := range vals {
		total += v
	}
	top := 0.0
	for i := 0; i < 10; i++ {
		maxIdx := 0
		for j, v := range vals {
			if v > vals[maxIdx] {
				maxIdx = j
			}
			_ = v
		}
		top += vals[maxIdx]
		vals[maxIdx] = 0
	}
	if top < total/2 {
		t.Errorf("top-10 cells carry %.1f of %.1f; expected heavy skew", top, total)
	}
}

func TestZipfBadExponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Zipf(1.0) did not panic")
		}
	}()
	Zipf([]int{4}, 1.0, 1)
}

func TestSeasonalStructure(t *testing.T) {
	s := Seasonal(24*14, 4)
	if len(s) != 24*14 {
		t.Fatal("length wrong")
	}
	// Same hour on consecutive days should correlate more than opposite
	// hours: compare average absolute difference.
	var samePhase, antiPhase float64
	n := 0
	for i := 0; i+36 < len(s); i++ {
		samePhase += abs(s[i] - s[i+24])
		antiPhase += abs(s[i] - s[i+12])
		n++
	}
	if samePhase >= antiPhase {
		t.Errorf("no daily cycle: same-phase diff %g vs anti-phase %g", samePhase/float64(n), antiPhase/float64(n))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
