// Package dataset generates the synthetic stand-ins for the paper's
// experimental datasets (see DESIGN.md §4 for the substitution rationale):
//
//   - Temperature: a dense, smooth 4-d cube (latitude, longitude, altitude,
//     time) modeled on the JPL TEMPERATURE dataset — latitudinal gradient,
//     altitude lapse rate, diurnal and seasonal harmonics, low-frequency
//     spatial structure, and measurement noise;
//   - Precipitation: a sparse 3-d cube (latitude, longitude, day) modeled on
//     the Pacific Northwest PRECIPITATION dataset — localized storm clusters
//     decaying in space and time over a mostly dry field;
//   - generic dense, sparse, and random-walk generators for micro-workloads.
//
// All generators are deterministic functions of their seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// Temperature synthesizes a 4-d temperature cube with the given shape
// (lat, lon, alt, time). Values are in degrees Celsius.
func Temperature(shape []int, seed int64) *ndarray.Array {
	if len(shape) != 4 {
		panic(fmt.Sprintf("dataset: Temperature needs 4 dims, got %v", shape))
	}
	rng := rand.New(rand.NewSource(seed))
	a := ndarray.New(shape...)
	nLat, nLon, nAlt, nT := shape[0], shape[1], shape[2], shape[3]
	// A handful of low-frequency spatial harmonics shared by all time steps.
	const nHarmonics = 4
	type harmonic struct{ fLat, fLon, phase, amp float64 }
	hs := make([]harmonic, nHarmonics)
	for i := range hs {
		hs[i] = harmonic{
			fLat:  1 + rng.Float64()*3,
			fLon:  1 + rng.Float64()*3,
			phase: rng.Float64() * 2 * math.Pi,
			amp:   2 + rng.Float64()*3,
		}
	}
	a.Each(func(c []int, _ float64) {
		lat := float64(c[0]) / float64(nLat) // 0 = equator, 1 = pole
		lon := float64(c[1]) / float64(nLon)
		alt := float64(c[2]) / float64(nAlt)
		tm := float64(c[3])
		v := 30 - 45*lat                                       // equator-to-pole gradient
		v -= 40 * alt                                          // lapse rate across the altitude range
		v += 8 * math.Sin(2*math.Pi*tm/float64(maxInt(nT, 2))) // seasonal cycle
		v += 3 * math.Sin(2*math.Pi*tm/2)                      // diurnal (2 samples/day)
		for _, h := range hs {
			v += h.amp * math.Sin(2*math.Pi*(h.fLat*lat+h.fLon*lon)+h.phase)
		}
		v += rng.NormFloat64() * 0.5 // sensor noise
		a.Set(v, c...)
	})
	return a
}

// Precipitation synthesizes a sparse 3-d precipitation cube with the given
// shape (lat, lon, day). Values are daily millimeters; most cells are zero.
func Precipitation(shape []int, seed int64) *ndarray.Array {
	if len(shape) != 3 {
		panic(fmt.Sprintf("dataset: Precipitation needs 3 dims, got %v", shape))
	}
	rng := rand.New(rand.NewSource(seed))
	a := ndarray.New(shape...)
	nLat, nLon, nT := shape[0], shape[1], shape[2]
	// One storm every ~6 days on average, each a space-time Gaussian bump.
	nStorms := maxInt(1, nT/6)
	for s := 0; s < nStorms; s++ {
		cLat := rng.Float64() * float64(nLat)
		cLon := rng.Float64() * float64(nLon)
		cT := rng.Float64() * float64(nT)
		sigmaS := 0.7 + rng.Float64()*float64(maxInt(nLat, nLon))/6
		sigmaT := 0.5 + rng.Float64()*1.5
		peak := 5 + rng.ExpFloat64()*20
		lo := maxInt(0, int(cT-3*sigmaT))
		hi := minInt(nT-1, int(cT+3*sigmaT))
		for tm := lo; tm <= hi; tm++ {
			dt := (float64(tm) - cT) / sigmaT
			for la := 0; la < nLat; la++ {
				for lo2 := 0; lo2 < nLon; lo2++ {
					dla := (float64(la) - cLat) / sigmaS
					dlo := (float64(lo2) - cLon) / sigmaS
					v := peak * math.Exp(-(dla*dla+dlo*dlo+dt*dt)/2)
					if v > 0.5 {
						a.Add(v, la, lo2, tm)
					}
				}
			}
		}
	}
	return a
}

// Dense fills an array of the given shape with smooth correlated values
// plus noise — a generic stand-in for any dense measurement cube.
func Dense(shape []int, seed int64) *ndarray.Array {
	rng := rand.New(rand.NewSource(seed))
	a := ndarray.New(shape...)
	freqs := make([]float64, len(shape))
	phases := make([]float64, len(shape))
	for i := range freqs {
		freqs[i] = 1 + rng.Float64()*2
		phases[i] = rng.Float64() * 2 * math.Pi
	}
	a.Each(func(c []int, _ float64) {
		v := 0.0
		for i, ci := range c {
			v += math.Sin(2*math.Pi*freqs[i]*float64(ci)/float64(shape[i]) + phases[i])
		}
		v += rng.NormFloat64() * 0.2
		a.Set(v, c...)
	})
	return a
}

// Sparse fills an array in which roughly density*size cells hold
// exponential-tailed values and the rest are zero.
func Sparse(shape []int, density float64, seed int64) *ndarray.Array {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("dataset: density %g out of [0,1]", density))
	}
	rng := rand.New(rand.NewSource(seed))
	a := ndarray.New(shape...)
	data := a.Data()
	for i := range data {
		if rng.Float64() < density {
			data[i] = rng.ExpFloat64() * 10
		}
	}
	return a
}

// RandomWalk returns a length-n random-walk series, the stream workload of
// §6.3's synopsis maintenance experiment.
func RandomWalk(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64()
		out[i] = v
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Zipf fills an array with heavy-tailed values: cell magnitudes follow a
// Zipf-like distribution over a shuffled rank order, the classic skewed
// OLAP measure (a few hot cells carry most of the mass).
func Zipf(shape []int, s float64, seed int64) *ndarray.Array {
	if s <= 1 {
		panic(fmt.Sprintf("dataset: Zipf exponent %g must exceed 1", s))
	}
	rng := rand.New(rand.NewSource(seed))
	a := ndarray.New(shape...)
	data := a.Data()
	perm := rng.Perm(len(data))
	for rank, idx := range perm {
		data[idx] = 1000 / math.Pow(float64(rank+1), s)
	}
	return a
}

// Seasonal returns a 1-d series with daily and weekly cycles plus drift and
// noise — a realistic stream workload with structure at several scales.
func Seasonal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	drift := 0.0
	for i := range out {
		drift += rng.NormFloat64() * 0.02
		out[i] = 10 +
			4*math.Sin(2*math.Pi*float64(i)/24) +
			2*math.Sin(2*math.Pi*float64(i)/(24*7)) +
			drift + rng.NormFloat64()*0.2
	}
	return out
}
