package synopsis

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOfferBelowCapacity(t *testing.T) {
	s := New[int](3)
	for i := 0; i < 3; i++ {
		if _, ev := s.Offer(i, float64(i), float64(i)); ev {
			t.Fatalf("eviction below capacity at %d", i)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestOfferEvictsMinimum(t *testing.T) {
	s := New[string](2)
	s.Offer("a", 1, 10)
	s.Offer("b", 2, 20)
	ev, was := s.Offer("c", 3, 15)
	if !was || ev.Key != "a" {
		t.Fatalf("evicted %+v (%v), want a", ev, was)
	}
	if !s.Contains("b") || !s.Contains("c") || s.Contains("a") {
		t.Error("wrong retained set")
	}
}

func TestOfferRejectsWeakNewcomer(t *testing.T) {
	s := New[string](2)
	s.Offer("a", 1, 10)
	s.Offer("b", 2, 20)
	ev, was := s.Offer("c", 3, 5)
	if !was || ev.Key != "c" {
		t.Fatalf("weak newcomer should bounce, got %+v (%v)", ev, was)
	}
	if s.Contains("c") {
		t.Error("weak newcomer retained")
	}
}

func TestOfferDuplicatePanics(t *testing.T) {
	s := New[int](2)
	s.Offer(1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate key did not panic")
		}
	}()
	s.Offer(1, 2, 2)
}

func TestUnboundedKeepsAll(t *testing.T) {
	s := New[int](0)
	for i := 0; i < 1000; i++ {
		if _, ev := s.Offer(i, 1, float64(i)); ev {
			t.Fatal("unbounded synopsis evicted")
		}
	}
	if s.Len() != 1000 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestTopKMatchesOfflineSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, k = 500, 25
	weights := make([]float64, n)
	s := New[int](k)
	for i := range weights {
		weights[i] = rng.Float64() * 100
		s.Offer(i, 0, weights[i])
	}
	sorted := append([]float64(nil), weights...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	threshold := sorted[k-1]
	for _, e := range s.Entries() {
		if e.Weight < threshold {
			t.Fatalf("retained weight %g below true top-%d threshold %g", e.Weight, k, threshold)
		}
	}
	var sum float64
	for _, w := range sorted[:k] {
		sum += w
	}
	if got := s.RetainedEnergy(); got < sum-1e-9 || got > sum+1e-9 {
		t.Errorf("retained energy %g, want %g", got, sum)
	}
}

func TestMinWeight(t *testing.T) {
	s := New[int](3)
	if s.MinWeight() != 0 {
		t.Error("empty MinWeight should be 0")
	}
	s.Offer(1, 0, 5)
	s.Offer(2, 0, 3)
	s.Offer(3, 0, 9)
	if s.MinWeight() != 3 {
		t.Errorf("MinWeight = %g", s.MinWeight())
	}
}

func TestStructKeys(t *testing.T) {
	type jk struct{ J, K int }
	s := New[jk](2)
	s.Offer(jk{1, 0}, 1, 1)
	s.Offer(jk{2, 0}, 2, 2)
	if !s.Contains(jk{1, 0}) {
		t.Error("struct key lookup failed")
	}
}
