package synopsis

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// CoefEntry is one retained coefficient of a compressed transform.
type CoefEntry struct {
	Coords []int
	Value  float64
	Energy float64
}

// Compressed is a best-K-term approximation of a multidimensional wavelet
// transform: the K coefficients whose omission would cost the most squared
// error. Because the Haar basis is orthogonal, the squared error of the
// approximation equals exactly the summed energy of the dropped
// coefficients — the property the container's tests pin down.
type Compressed struct {
	Shape         []int
	Form          wavelet.Form
	Entries       []CoefEntry
	DroppedEnergy float64 // summed energy of coefficients not retained
}

// energyOf returns value^2 times the support volume of the coefficient at
// coords, for either decomposition form.
func energyOf(shape []int, form wavelet.Form, coords []int, v float64) float64 {
	vol := 1.0
	switch form {
	case wavelet.Standard:
		for t, c := range coords {
			n := bitutil.Log2(shape[t])
			vol *= float64(haar.Support(n, c).Len())
		}
	case wavelet.NonStandard:
		n := bitutil.Log2(shape[0])
		j, _, _ := wavelet.NonStdLevel(n, coords)
		if j > n {
			j = n // the overall average spans the whole domain
		}
		vol = float64(bitutil.IntPow(1<<uint(j), len(shape)))
	default:
		panic(fmt.Sprintf("synopsis: unknown form %v", form))
	}
	return v * v * vol
}

// Compress retains the k highest-energy coefficients of hat. k <= 0 keeps
// everything (useful for round-trip tests).
func Compress(hat *ndarray.Array, form wavelet.Form, k int) *Compressed {
	c := &Compressed{Shape: hat.Shape(), Form: form}
	all := make([]CoefEntry, 0, hat.Size())
	hat.Each(func(coords []int, v float64) {
		e := energyOf(c.Shape, form, coords, v)
		all = append(all, CoefEntry{Coords: append([]int(nil), coords...), Value: v, Energy: e})
	})
	sort.Slice(all, func(i, j int) bool { return all[i].Energy > all[j].Energy })
	if k <= 0 || k > len(all) {
		k = len(all)
	}
	c.Entries = all[:k]
	for _, e := range all[k:] {
		c.DroppedEnergy += e.Energy
	}
	return c
}

// K returns the number of retained coefficients.
func (c *Compressed) K() int { return len(c.Entries) }

// RetainedEnergy returns the summed energy of the kept coefficients.
func (c *Compressed) RetainedEnergy() float64 {
	sum := 0.0
	for _, e := range c.Entries {
		sum += e.Energy
	}
	return sum
}

// Transform materializes the sparse approximation as a dense transform
// (dropped coefficients are zero).
func (c *Compressed) Transform() *ndarray.Array {
	hat := ndarray.New(c.Shape...)
	for _, e := range c.Entries {
		hat.Set(e.Value, e.Coords...)
	}
	return hat
}

// Reconstruct inverts the approximation back to the data domain.
func (c *Compressed) Reconstruct() *ndarray.Array {
	return wavelet.Inverse(c.Transform(), c.Form)
}

// PointValue evaluates one cell of the approximation without materializing
// anything, by walking only the retained coefficients on the cell's path.
func (c *Compressed) PointValue(point []int) float64 {
	// For small K a linear scan with per-coefficient weight evaluation is
	// both simple and fast.
	sum := 0.0
	for _, e := range c.Entries {
		sum += e.Value * pointWeight(c.Shape, c.Form, e.Coords, point)
	}
	return sum
}

// pointWeight returns the contribution weight of the coefficient at coords
// to the cell at point (0 when the support does not cover the point).
func pointWeight(shape []int, form wavelet.Form, coords, point []int) float64 {
	switch form {
	case wavelet.Standard:
		w := 1.0
		for t, cIdx := range coords {
			n := bitutil.Log2(shape[t])
			w *= weight1D(n, cIdx, point[t])
			if w == 0 {
				return 0
			}
		}
		return w
	case wavelet.NonStandard:
		n := bitutil.Log2(shape[0])
		j, subband, pos := wavelet.NonStdLevel(n, coords)
		if subband == nil {
			return 1 // the overall average contributes to every cell
		}
		w := 1.0
		for t := range coords {
			if point[t]>>uint(j) != pos[t] {
				return 0
			}
			if subband[t] && point[t]>>uint(j-1)&1 == 1 {
				w = -w
			}
		}
		return w
	default:
		panic(fmt.Sprintf("synopsis: unknown form %v", form))
	}
}

// weight1D is the contribution of the 1-d coefficient at flat index idx to
// position p.
func weight1D(n, idx, p int) float64 {
	if idx == 0 {
		return 1
	}
	j, k := haar.LevelPos(n, idx)
	if p>>uint(j) != k {
		return 0
	}
	if p>>uint(j-1)&1 == 0 {
		return 1
	}
	return -1
}

// SSE returns the exact squared error of the approximation against the
// original data.
func (c *Compressed) SSE(orig *ndarray.Array) float64 {
	rec := c.Reconstruct()
	sse := 0.0
	for i, v := range orig.Data() {
		d := v - rec.Data()[i]
		sse += d * d
	}
	return sse
}

// --- binary persistence -------------------------------------------------------

const compressedMagic = uint32(0x53535953) // "SSYS"

// WriteTo serializes the compressed transform.
func (c *Compressed) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := put(compressedMagic); err != nil {
		return n, err
	}
	if err := put(uint32(c.Form)); err != nil {
		return n, err
	}
	if err := put(uint32(len(c.Shape))); err != nil {
		return n, err
	}
	for _, s := range c.Shape {
		if err := put(uint32(s)); err != nil {
			return n, err
		}
	}
	if err := put(uint32(len(c.Entries))); err != nil {
		return n, err
	}
	if err := put(math.Float64bits(c.DroppedEnergy)); err != nil {
		return n, err
	}
	for _, e := range c.Entries {
		for _, cc := range e.Coords {
			if err := put(uint32(cc)); err != nil {
				return n, err
			}
		}
		if err := put(math.Float64bits(e.Value)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCompressed deserializes a compressed transform written by WriteTo.
func ReadCompressed(r io.Reader) (*Compressed, error) {
	br := bufio.NewReader(r)
	var magic, form, dims uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != compressedMagic {
		return nil, fmt.Errorf("synopsis: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &form); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &dims); err != nil {
		return nil, err
	}
	if dims == 0 || dims > 16 {
		return nil, fmt.Errorf("synopsis: implausible dimensionality %d", dims)
	}
	c := &Compressed{Form: wavelet.Form(form), Shape: make([]int, dims)}
	for i := range c.Shape {
		var s uint32
		if err := binary.Read(br, binary.LittleEndian, &s); err != nil {
			return nil, err
		}
		c.Shape[i] = int(s)
	}
	var k uint32
	if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
		return nil, err
	}
	var de uint64
	if err := binary.Read(br, binary.LittleEndian, &de); err != nil {
		return nil, err
	}
	c.DroppedEnergy = math.Float64frombits(de)
	c.Entries = make([]CoefEntry, k)
	for i := range c.Entries {
		coords := make([]int, dims)
		for t := range coords {
			var cc uint32
			if err := binary.Read(br, binary.LittleEndian, &cc); err != nil {
				return nil, err
			}
			coords[t] = int(cc)
		}
		var vb uint64
		if err := binary.Read(br, binary.LittleEndian, &vb); err != nil {
			return nil, err
		}
		v := math.Float64frombits(vb)
		c.Entries[i] = CoefEntry{
			Coords: coords,
			Value:  v,
			Energy: energyOf(c.Shape, c.Form, coords, v),
		}
	}
	return c, nil
}
