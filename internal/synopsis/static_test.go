package synopsis

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func randArray(rng *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64() * 10
	}
	return a
}

func TestCompressKeepAllRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randArray(rng, 16, 16)
	for _, form := range []wavelet.Form{wavelet.Standard, wavelet.NonStandard} {
		c := Compress(wavelet.Transform(a, form), form, 0)
		if c.K() != 256 || c.DroppedEnergy != 0 {
			t.Fatalf("%v: K=%d dropped=%g", form, c.K(), c.DroppedEnergy)
		}
		if !c.Reconstruct().EqualApprox(a, 1e-8) {
			t.Errorf("%v: lossless compression does not round trip", form)
		}
	}
}

func TestSSEEqualsDroppedEnergy(t *testing.T) {
	// The defining property of best-K Haar approximation: squared error ==
	// summed energy of the dropped coefficients (orthogonality).
	rng := rand.New(rand.NewSource(2))
	for _, form := range []wavelet.Form{wavelet.Standard, wavelet.NonStandard} {
		a := randArray(rng, 16, 16)
		hat := wavelet.Transform(a, form)
		for _, k := range []int{1, 8, 64, 200} {
			c := Compress(hat, form, k)
			sse := c.SSE(a)
			if math.Abs(sse-c.DroppedEnergy) > 1e-6*(1+sse) {
				t.Fatalf("%v k=%d: SSE %g vs dropped energy %g", form, k, sse, c.DroppedEnergy)
			}
		}
	}
}

func TestCompressMonotoneError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randArray(rng, 32, 32)
	hat := wavelet.Transform(a, wavelet.Standard)
	prev := math.Inf(1)
	for _, k := range []int{4, 16, 64, 256, 1024} {
		sse := Compress(hat, wavelet.Standard, k).SSE(a)
		if sse > prev+1e-9 {
			t.Fatalf("SSE increased with k: %g -> %g at k=%d", prev, sse, k)
		}
		prev = sse
	}
	if prev > 1e-9 {
		t.Errorf("full retention leaves SSE %g", prev)
	}
}

func TestCompressIsBestK(t *testing.T) {
	// No other selection of k coefficients can beat the top-k-by-energy
	// selection; check against a few random selections.
	rng := rand.New(rand.NewSource(4))
	a := randArray(rng, 8, 8)
	hat := wavelet.Transform(a, wavelet.Standard)
	k := 10
	best := Compress(hat, wavelet.Standard, k).SSE(a)
	full := Compress(hat, wavelet.Standard, 0)
	for trial := 0; trial < 30; trial++ {
		perm := rng.Perm(len(full.Entries))[:k]
		alt := &Compressed{Shape: full.Shape, Form: full.Form}
		for _, i := range perm {
			alt.Entries = append(alt.Entries, full.Entries[i])
		}
		if alt.SSE(a) < best-1e-9 {
			t.Fatalf("random selection beat the greedy top-k: %g < %g", alt.SSE(a), best)
		}
	}
}

func TestPointValueMatchesReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, form := range []wavelet.Form{wavelet.Standard, wavelet.NonStandard} {
		a := randArray(rng, 16, 16)
		c := Compress(wavelet.Transform(a, form), form, 40)
		rec := c.Reconstruct()
		for trial := 0; trial < 50; trial++ {
			p := []int{rng.Intn(16), rng.Intn(16)}
			if got, want := c.PointValue(p), rec.At(p...); math.Abs(got-want) > 1e-8 {
				t.Fatalf("%v point %v: %g vs %g", form, p, got, want)
			}
		}
	}
}

func TestCompressedPersistenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, form := range []wavelet.Form{wavelet.Standard, wavelet.NonStandard} {
		a := randArray(rng, 8, 8)
		c := Compress(wavelet.Transform(a, form), form, 17)
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCompressed(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.K() != c.K() || back.Form != c.Form {
			t.Fatalf("%v: K=%d form=%v after round trip", form, back.K(), back.Form)
		}
		if math.Abs(back.DroppedEnergy-c.DroppedEnergy) > 1e-12 {
			t.Error("dropped energy not preserved")
		}
		if !back.Reconstruct().EqualApprox(c.Reconstruct(), 1e-12) {
			t.Errorf("%v: reconstruction differs after persistence", form)
		}
	}
}

func TestReadCompressedRejectsGarbage(t *testing.T) {
	if _, err := ReadCompressed(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadCompressed(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestQuickSSEIdentity(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randArray(rng, 8, 8)
		hat := wavelet.Transform(a, wavelet.Standard)
		k := 1 + int(kRaw)%64
		c := Compress(hat, wavelet.Standard, k)
		sse := c.SSE(a)
		return math.Abs(sse-c.DroppedEnergy) <= 1e-6*(1+sse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
