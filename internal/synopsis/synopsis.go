// Package synopsis maintains best-K-term wavelet synopses: the K
// coefficients with the largest retained energy, the summary object that the
// data-stream algorithms of paper §5.3 keep under bounded memory.
//
// For the unnormalized Haar convention used throughout this repository, the
// squared-error energy of a coefficient equals value² times the size of its
// support interval; callers pass that weight explicitly so the container
// stays agnostic to dimensionality and decomposition form.
package synopsis

import (
	"container/heap"
	"fmt"
)

// Entry is one retained coefficient.
type Entry[K comparable] struct {
	Key    K
	Value  float64
	Weight float64 // retention priority; energy = value^2 * support
}

// Synopsis keeps the K entries with the largest weight seen so far.
type Synopsis[K comparable] struct {
	k     int
	items entryHeap[K]
	index map[K]bool
}

// New creates a synopsis retaining at most k entries. k <= 0 means
// unbounded (useful for exact replay in tests).
func New[K comparable](k int) *Synopsis[K] {
	return &Synopsis[K]{k: k, index: make(map[K]bool)}
}

// K returns the capacity (0 = unbounded).
func (s *Synopsis[K]) K() int { return s.k }

// Len returns the number of retained entries.
func (s *Synopsis[K]) Len() int { return len(s.items) }

// Offer proposes a finalized coefficient. If the synopsis is full and the
// new entry outweighs the current minimum, the minimum is evicted and
// returned. Offering an already-present key panics: stream coefficients
// are only finalized once.
func (s *Synopsis[K]) Offer(key K, value, weight float64) (evicted Entry[K], wasEvicted bool) {
	if s.index[key] {
		panic(fmt.Sprintf("synopsis: key %v offered twice", key))
	}
	e := Entry[K]{Key: key, Value: value, Weight: weight}
	if s.k <= 0 || len(s.items) < s.k {
		s.index[key] = true
		heap.Push(&s.items, e)
		return evicted, false
	}
	if s.items[0].Weight >= weight {
		return e, true // the newcomer itself is dropped
	}
	evicted = s.items[0]
	delete(s.index, evicted.Key)
	s.index[key] = true
	s.items[0] = e
	heap.Fix(&s.items, 0)
	return evicted, true
}

// Contains reports whether a key is retained.
func (s *Synopsis[K]) Contains(key K) bool { return s.index[key] }

// Entries returns the retained entries in unspecified order.
func (s *Synopsis[K]) Entries() []Entry[K] {
	out := make([]Entry[K], len(s.items))
	copy(out, s.items)
	return out
}

// MinWeight returns the smallest retained weight (0 when empty).
func (s *Synopsis[K]) MinWeight() float64 {
	if len(s.items) == 0 {
		return 0
	}
	return s.items[0].Weight
}

// RetainedEnergy returns the sum of retained weights.
func (s *Synopsis[K]) RetainedEnergy() float64 {
	sum := 0.0
	for _, e := range s.items {
		sum += e.Weight
	}
	return sum
}

type entryHeap[K comparable] []Entry[K]

func (h entryHeap[K]) Len() int            { return len(h) }
func (h entryHeap[K]) Less(i, j int) bool  { return h[i].Weight < h[j].Weight }
func (h entryHeap[K]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap[K]) Push(x interface{}) { *h = append(*h, x.(Entry[K])) }
func (h *entryHeap[K]) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
