package haar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

// randVec returns a random vector of size 2^n.
func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, 1<<uint(n))
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func TestPaperExample(t *testing.T) {
	// Paper §2.1: {3, 5, 7, 5} -> {5, -1, -1, 1}.
	got := Transform([]float64{3, 5, 7, 5})
	want := []float64{5, -1, -1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("Transform({3,5,7,5}) = %v, want %v", got, want)
		}
	}
}

func TestTransformSize1(t *testing.T) {
	got := Transform([]float64{42})
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("Transform of singleton = %v", got)
	}
	back := Inverse(got)
	if len(back) != 1 || back[0] != 42 {
		t.Fatalf("Inverse of singleton = %v", back)
	}
}

func TestTransformDoesNotMutateInput(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	Transform(a)
	if a[0] != 1 || a[3] != 4 {
		t.Error("Transform mutated its input")
	}
	hat := []float64{5, -1, -1, 1}
	Inverse(hat)
	if hat[0] != 5 || hat[3] != 1 {
		t.Error("Inverse mutated its input")
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 10; n++ {
		a := randVec(rng, n)
		back := Inverse(Transform(a))
		for i := range a {
			if math.Abs(a[i]-back[i]) > tol {
				t.Fatalf("n=%d round trip differs at %d: %g vs %g", n, i, a[i], back[i])
			}
		}
	}
}

func TestTransformPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Transform of length 3 did not panic")
		}
	}()
	Transform([]float64{1, 2, 3})
}

func TestAverageIsFirstCoefficient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randVec(rng, 6)
	hat := Transform(a)
	sum := 0.0
	for _, v := range a {
		sum += v
	}
	if math.Abs(hat[0]-sum/float64(len(a))) > tol {
		t.Errorf("hat[0] = %g, want mean %g", hat[0], sum/float64(len(a)))
	}
}

func TestIndexLayout(t *testing.T) {
	// n=3: u at 0, w[3,0] at 1, w[2,0..1] at 2..3, w[1,0..3] at 4..7.
	n := 3
	wantIdx := map[[2]int]int{
		{3, 0}: 1, {2, 0}: 2, {2, 1}: 3,
		{1, 0}: 4, {1, 1}: 5, {1, 2}: 6, {1, 3}: 7,
	}
	for jk, want := range wantIdx {
		if got := Index(n, jk[0], jk[1]); got != want {
			t.Errorf("Index(3,%d,%d) = %d, want %d", jk[0], jk[1], got, want)
		}
	}
}

func TestLevelPosRoundTrip(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for j := 1; j <= n; j++ {
			for k := 0; k < 1<<uint(n-j); k++ {
				idx := Index(n, j, k)
				gj, gk := LevelPos(n, idx)
				if gj != j || gk != k {
					t.Fatalf("LevelPos(%d, %d) = (%d,%d), want (%d,%d)", n, idx, gj, gk, j, k)
				}
			}
		}
	}
}

func TestIndexPanics(t *testing.T) {
	for _, c := range [][3]int{{3, 0, 0}, {3, 4, 0}, {3, 2, 2}, {3, 1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%v) did not panic", c)
				}
			}()
			Index(c[0], c[1], c[2])
		}()
	}
}

func TestSupport(t *testing.T) {
	n := 3
	// w[2,1] covers [4,7] (paper Figure 2).
	s := Support(n, Index(n, 2, 1))
	if s.Start() != 4 || s.End() != 7 {
		t.Errorf("Support(w[2,1]) = %v", s)
	}
	root := Support(n, 0)
	if root.Start() != 0 || root.End() != 7 {
		t.Errorf("Support(u) = %v", root)
	}
}

func TestPointPathLemma1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 8; n++ {
		a := randVec(rng, n)
		hat := Transform(a)
		for i := range a {
			path := PointPath(n, i)
			if len(path) != n+1 {
				t.Fatalf("n=%d path length %d, want %d (Lemma 1)", n, len(path), n+1)
			}
			if got := ReconstructPoint(hat, i); math.Abs(got-a[i]) > tol {
				t.Fatalf("n=%d ReconstructPoint(%d) = %g, want %g", n, i, got, a[i])
			}
		}
	}
}

func TestPointPathWeightsAreSigns(t *testing.T) {
	for _, c := range PointPath(6, 37) {
		if c.Weight != 1 && c.Weight != -1 {
			t.Fatalf("path weight %g not +-1", c.Weight)
		}
	}
}

func TestPrefixSumCoefs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 1; n <= 8; n++ {
		a := randVec(rng, n)
		hat := Transform(a)
		prefix := 0.0
		for t2 := 0; t2 <= len(a); t2++ {
			coefs := PrefixSumCoefs(n, t2)
			if len(coefs) > n+1 {
				t.Fatalf("n=%d t=%d used %d coefficients, want <= %d", n, t2, len(coefs), n+1)
			}
			got := 0.0
			for _, c := range coefs {
				got += c.Weight * hat[c.Index]
			}
			if math.Abs(got-prefix) > tol {
				t.Fatalf("n=%d prefix(%d) = %g, want %g", n, t2, got, prefix)
			}
			if t2 < len(a) {
				prefix += a[t2]
			}
		}
	}
}

func TestRangeSumLemma2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 1; n <= 7; n++ {
		a := randVec(rng, n)
		hat := Transform(a)
		for trial := 0; trial < 50; trial++ {
			l := rng.Intn(len(a))
			r := l + rng.Intn(len(a)-l)
			want := 0.0
			for i := l; i <= r; i++ {
				want += a[i]
			}
			if got := RangeSum(hat, l, r); math.Abs(got-want) > 1e-7 {
				t.Fatalf("n=%d RangeSum(%d,%d) = %g, want %g", n, l, r, got, want)
			}
			if used := len(RangeSumCoefs(n, l, r)); used > 2*n+1 {
				t.Fatalf("n=%d RangeSum(%d,%d) used %d coefficients, Lemma 2 bound is %d", n, l, r, used, 2*n+1)
			}
		}
	}
}

func TestRangeSumFullDomain(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	hat := Transform(a)
	if got := RangeSum(hat, 0, 7); math.Abs(got-36) > tol {
		t.Errorf("full-range sum = %g", got)
	}
	// Full range needs only the average.
	coefs := RangeSumCoefs(3, 0, 7)
	if len(coefs) != 1 || coefs[0].Index != 0 {
		t.Errorf("full-range coefficients = %v", coefs)
	}
}

func TestRangeSumSinglePoint(t *testing.T) {
	a := []float64{4, 8, 15, 16, 23, 42, 108, 3}
	hat := Transform(a)
	for i, want := range a {
		if got := RangeSum(hat, i, i); math.Abs(got-want) > tol {
			t.Errorf("RangeSum(%d,%d) = %g, want %g", i, i, got, want)
		}
	}
}

func TestScalingAt(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 1; n <= 7; n++ {
		a := randVec(rng, n)
		hat := Transform(a)
		for j := 0; j <= n; j++ {
			size := 1 << uint(j)
			for k := 0; k < 1<<uint(n-j); k++ {
				want := 0.0
				for i := k * size; i < (k+1)*size; i++ {
					want += a[i]
				}
				want /= float64(size)
				if got := ScalingAt(hat, j, k); math.Abs(got-want) > 1e-8 {
					t.Fatalf("n=%d ScalingAt(%d,%d) = %g, want %g", n, j, k, got, want)
				}
			}
		}
	}
}

func TestChildScaling(t *testing.T) {
	u, w := 6.0, 2.0
	l, r := ChildScaling(u, w)
	if l != 8 || r != 4 {
		t.Errorf("ChildScaling = %g,%g", l, r)
	}
	// Must invert the decomposition step.
	if (l+r)/2 != u || (l-r)/2 != w {
		t.Error("ChildScaling does not invert averaging/differencing")
	}
}

func TestEnergyRelation(t *testing.T) {
	// For the unnormalized transform, sum of squares weighted by support size
	// equals the input energy: sum a_i^2 = sum_c |support(c)| * c^2.
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 8; n++ {
		a := randVec(rng, n)
		hat := Transform(a)
		var inEnergy, coefEnergy float64
		for _, v := range a {
			inEnergy += v * v
		}
		for idx, v := range hat {
			coefEnergy += float64(Support(n, idx).Len()) * v * v
		}
		if math.Abs(inEnergy-coefEnergy) > 1e-6*(1+inEnergy) {
			t.Fatalf("n=%d energy mismatch: %g vs %g", n, inEnergy, coefEnergy)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 9)
		rng := rand.New(rand.NewSource(seed))
		a := randVec(rng, n)
		back := Inverse(Transform(a))
		for i := range a {
			if math.Abs(a[i]-back[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickLinearity(t *testing.T) {
	// DWT(alpha*a + b) = alpha*DWT(a) + DWT(b).
	f := func(seed int64, alphaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := float64(alphaRaw%10) - 5
		a, b := randVec(rng, 6), randVec(rng, 6)
		combo := make([]float64, len(a))
		for i := range a {
			combo[i] = alpha*a[i] + b[i]
		}
		ha, hb, hc := Transform(a), Transform(b), Transform(combo)
		for i := range hc {
			if math.Abs(hc[i]-(alpha*ha[i]+hb[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickPointReconstruction(t *testing.T) {
	f := func(seed int64, iRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVec(rng, 8)
		hat := Transform(a)
		i := int(iRaw) % len(a)
		return math.Abs(ReconstructPoint(hat, i)-a[i]) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
