// Package haar implements the one-dimensional unnormalized Haar discrete
// wavelet transform used throughout the paper: at each level of
// decomposition consecutive pairs are replaced by their average (a+b)/2 and
// half-difference (a-b)/2 (paper §2.1).
//
// # Layout
//
// A transformed vector of size N = 2^n stores the overall average u[n,0] at
// index 0 followed by the detail coefficients sorted decreasing by level and
// increasing by position:
//
//	index 0:             u[n,0]
//	index 2^(n-j) + k:   w[j,k]   for 1 <= j <= n, 0 <= k < 2^(n-j)
//
// so w[n,0] sits at index 1, w[n-1,*] at 2..3, and the finest level w[1,*]
// occupies the upper half. This is the classical error-tree order and the
// order assumed by the SHIFT and SPLIT operations in internal/core.
package haar

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
)

// Levels returns n = log2(N) for a vector of power-of-two length N.
func Levels(n int) int { return bitutil.Log2(n) }

// Index returns the flat position of the detail coefficient w[j,k] in the
// transform of a vector of size 2^n. The scaling coefficient u[n,0] is at
// index 0 and has no (j,k) form here.
func Index(n, j, k int) int {
	if j < 1 || j > n || k < 0 || k >= 1<<uint(n-j) {
		panic(fmt.Sprintf("haar: Index(n=%d, j=%d, k=%d) out of range", n, j, k))
	}
	return 1<<uint(n-j) + k
}

// LevelPos is the inverse of Index: it maps a flat position (>= 1) back to
// the level j and translation k of the detail coefficient stored there.
func LevelPos(n, idx int) (j, k int) {
	if idx < 1 || idx >= 1<<uint(n) {
		panic(fmt.Sprintf("haar: LevelPos(n=%d, idx=%d) out of range", n, idx))
	}
	j = n - bitutil.FloorLog2(idx)
	k = idx - 1<<uint(n-j)
	return j, k
}

// Support returns the support interval (Definition 1) of the coefficient at
// flat index idx in a transform of size 2^n. Index 0 (the overall average)
// has support over the whole domain.
func Support(n, idx int) dyadic.Interval {
	if idx == 0 {
		return dyadic.NewInterval(n, 0)
	}
	j, k := LevelPos(n, idx)
	return dyadic.NewInterval(j, k)
}

// Transform returns the Haar DWT of a, whose length must be a power of two.
// The input is not modified.
func Transform(a []float64) []float64 {
	n := bitutil.Log2(len(a))
	hat := make([]float64, len(a))
	cur := append([]float64(nil), a...)
	for j := 1; j <= n; j++ {
		half := len(cur) / 2
		next := make([]float64, half)
		base := 1 << uint(n-j)
		for k := 0; k < half; k++ {
			next[k] = (cur[2*k] + cur[2*k+1]) / 2
			hat[base+k] = (cur[2*k] - cur[2*k+1]) / 2
		}
		cur = next
	}
	hat[0] = cur[0]
	return hat
}

// Inverse reconstructs the original vector from its Haar transform.
// The input is not modified.
func Inverse(hat []float64) []float64 {
	n := bitutil.Log2(len(hat))
	cur := []float64{hat[0]}
	for j := n; j >= 1; j-- {
		base := 1 << uint(n-j)
		next := make([]float64, 2*len(cur))
		for k := range cur {
			w := hat[base+k]
			next[2*k] = cur[k] + w
			next[2*k+1] = cur[k] - w
		}
		cur = next
	}
	return cur
}

// Coef is a coefficient reference with the weight it contributes to a
// particular reconstruction or query.
type Coef struct {
	Index  int
	Weight float64
}

// PointPath returns, for a vector of size 2^n, the n+1 coefficients that
// reconstruct a[i] (Lemma 1) together with their +-1 weights: a[i] equals
// the weighted sum of the referenced transform entries.
func PointPath(n, i int) []Coef {
	if i < 0 || i >= 1<<uint(n) {
		panic(fmt.Sprintf("haar: PointPath(n=%d, i=%d) out of range", n, i))
	}
	path := make([]Coef, 0, n+1)
	path = append(path, Coef{Index: 0, Weight: 1})
	for j := 1; j <= n; j++ {
		k := i >> uint(j)
		w := 1.0
		if i>>uint(j-1)&1 == 1 { // right child at level j-1
			w = -1.0
		}
		path = append(path, Coef{Index: Index(n, j, k), Weight: w})
	}
	return path
}

// ReconstructPoint evaluates a[i] from the transform using Lemma 1, touching
// exactly log2(len(hat)) + 1 coefficients.
func ReconstructPoint(hat []float64, i int) float64 {
	n := bitutil.Log2(len(hat))
	v := 0.0
	for _, c := range PointPath(n, i) {
		v += c.Weight * hat[c.Index]
	}
	return v
}

// PrefixSumCoefs returns the weighted coefficients whose combination yields
// the prefix sum S(t) = a[0] + ... + a[t-1], for 0 <= t <= 2^n. At most
// n+1 coefficients are referenced (the overall average plus one detail per
// level along the boundary path), which is what makes range sums answerable
// with O(log N) coefficients (Lemma 2).
func PrefixSumCoefs(n, t int) []Coef {
	if t < 0 || t > 1<<uint(n) {
		panic(fmt.Sprintf("haar: PrefixSumCoefs(n=%d, t=%d) out of range", n, t))
	}
	var out []Coef
	if t == 0 {
		return out
	}
	out = append(out, Coef{Index: 0, Weight: float64(t)})
	for j := 1; j <= n; j++ {
		size := 1 << uint(j)
		k := t / size
		o := t % size
		if o == 0 || k >= 1<<uint(n-j) {
			continue
		}
		half := size / 2
		// w[j,k] contributes +w to the first half of its support and -w to
		// the second; a prefix ending o cells into the support picks up
		// min(o,half) - max(0, o-half) copies.
		weight := float64(bitutil.Min(o, half) - bitutil.Max(0, o-half))
		if weight != 0 {
			out = append(out, Coef{Index: Index(n, j, k), Weight: weight})
		}
	}
	return out
}

// RangeSumCoefs returns the weighted coefficients answering the range sum
// a[l] + ... + a[r] as the difference of two prefix sums, with weights for
// shared coefficients merged. By Lemma 2 at most 2n+1 coefficients appear.
func RangeSumCoefs(n, l, r int) []Coef {
	if l < 0 || r < l || r >= 1<<uint(n) {
		panic(fmt.Sprintf("haar: RangeSumCoefs(n=%d, l=%d, r=%d) invalid", n, l, r))
	}
	weights := map[int]float64{}
	for _, c := range PrefixSumCoefs(n, r+1) {
		weights[c.Index] += c.Weight
	}
	for _, c := range PrefixSumCoefs(n, l) {
		weights[c.Index] -= c.Weight
	}
	out := make([]Coef, 0, len(weights))
	for idx, w := range weights {
		if w != 0 {
			out = append(out, Coef{Index: idx, Weight: w})
		}
	}
	return out
}

// RangeSum evaluates a[l] + ... + a[r] directly from the transform.
func RangeSum(hat []float64, l, r int) float64 {
	n := bitutil.Log2(len(hat))
	sum := 0.0
	for _, c := range RangeSumCoefs(n, l, r) {
		sum += c.Weight * hat[c.Index]
	}
	return sum
}

// ScalingAt returns the scaling coefficient u[j,k] of the original vector,
// i.e. the average of the dyadic block I[j,k], computed from the transform
// by walking down from the root in n-j steps.
func ScalingAt(hat []float64, j, k int) float64 {
	n := bitutil.Log2(len(hat))
	if j < 0 || j > n || k < 0 || k >= 1<<uint(n-j) {
		panic(fmt.Sprintf("haar: ScalingAt(j=%d, k=%d) out of range for n=%d", j, k, n))
	}
	u := hat[0]
	for level := n; level > j; level-- {
		idx := Index(n, level, k>>uint(level-j))
		if k>>uint(level-j-1)&1 == 0 {
			u += hat[idx]
		} else {
			u -= hat[idx]
		}
	}
	return u
}

// ChildScaling applies one inverse decomposition step: given the scaling
// coefficient u of a node and its detail w, it returns the two child scaling
// coefficients (left = u + w, right = u - w).
func ChildScaling(u, w float64) (left, right float64) {
	return u + w, u - w
}

// TransformInto computes the Haar transform of src into dst (both length
// 2^n) using scratch for intermediates, without allocating. scratch must be
// at least half the input length. It exists for hot paths (streaming,
// chunked engines) where per-call allocation in Transform would dominate.
func TransformInto(dst, src, scratch []float64) {
	n := bitutil.Log2(len(src))
	if len(dst) != len(src) {
		panic(fmt.Sprintf("haar: TransformInto dst length %d, src %d", len(dst), len(src)))
	}
	if len(scratch) < len(src)/2 {
		panic(fmt.Sprintf("haar: TransformInto scratch %d, need %d", len(scratch), len(src)/2))
	}
	if n == 0 {
		dst[0] = src[0]
		return
	}
	// First level reads src; later levels ping-pong between dst's low
	// region and scratch.
	half := len(src) / 2
	base := 1 << uint(n-1)
	for k := 0; k < half; k++ {
		scratch[k] = (src[2*k] + src[2*k+1]) / 2
		dst[base+k] = (src[2*k] - src[2*k+1]) / 2
	}
	cur := scratch[:half]
	for j := 2; j <= n; j++ {
		half /= 2
		base = 1 << uint(n-j)
		for k := 0; k < half; k++ {
			dst[base+k] = (cur[2*k] - cur[2*k+1]) / 2
			cur[k] = (cur[2*k] + cur[2*k+1]) / 2
		}
		cur = cur[:half]
	}
	dst[0] = cur[0]
}

// InverseInto reconstructs the original vector from hat into dst without
// allocating; scratch must be at least half the length.
func InverseInto(dst, hat, scratch []float64) {
	n := bitutil.Log2(len(hat))
	if len(dst) != len(hat) {
		panic(fmt.Sprintf("haar: InverseInto dst length %d, hat %d", len(dst), len(hat)))
	}
	if len(scratch) < len(hat)/2 {
		panic(fmt.Sprintf("haar: InverseInto scratch %d, need %d", len(scratch), len(hat)/2))
	}
	if n == 0 {
		dst[0] = hat[0]
		return
	}
	cur := scratch[:1]
	cur[0] = hat[0]
	for j := n; j >= 2; j-- {
		base := 1 << uint(n-j)
		size := base
		// Expand cur (length size) into the next 2*size averages in place
		// within scratch (backwards to avoid overwrite).
		for k := size - 1; k >= 0; k-- {
			u, w := cur[k], hat[base+k]
			scratch[2*k] = u + w
			scratch[2*k+1] = u - w
		}
		cur = scratch[:2*size]
	}
	// Final level writes dst directly.
	base := 1 << uint(n-1)
	for k := 0; k < base; k++ {
		u, w := cur[k], hat[base+k]
		dst[2*k] = u + w
		dst[2*k+1] = u - w
	}
}
