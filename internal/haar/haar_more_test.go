package haar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuickPrefixSumMatchesBrute(t *testing.T) {
	f := func(seed int64, tRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 7
		a := randVec(rng, n)
		hat := Transform(a)
		tt := int(tRaw) % (len(a) + 1)
		got := 0.0
		for _, c := range PrefixSumCoefs(n, tt) {
			got += c.Weight * hat[c.Index]
		}
		want := 0.0
		for i := 0; i < tt; i++ {
			want += a[i]
		}
		return math.Abs(got-want) <= 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickScalingAt(t *testing.T) {
	f := func(seed int64, jRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 7
		a := randVec(rng, n)
		hat := Transform(a)
		j := int(jRaw) % (n + 1)
		k := int(kRaw) % (1 << uint(n-j))
		want := 0.0
		for i := k << uint(j); i < (k+1)<<uint(j); i++ {
			want += a[i]
		}
		want /= float64(int(1) << uint(j))
		return math.Abs(ScalingAt(hat, j, k)-want) <= 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSupportsPartitionPerLevel(t *testing.T) {
	// At every level, the supports of the details tile the domain exactly.
	n := 6
	for j := 1; j <= n; j++ {
		covered := make([]bool, 1<<uint(n))
		for k := 0; k < 1<<uint(n-j); k++ {
			s := Support(n, Index(n, j, k))
			for i := s.Start(); i <= s.End(); i++ {
				if covered[i] {
					t.Fatalf("level %d: position %d covered twice", j, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("level %d: position %d uncovered", j, i)
			}
		}
	}
}

func TestTransformIsOrthogonalBasis(t *testing.T) {
	// Inner products of distinct basis vectors (rows of the inverse applied
	// to unit coefficient vectors) must vanish.
	n := 4
	size := 1 << uint(n)
	basis := make([][]float64, size)
	for i := 0; i < size; i++ {
		e := make([]float64, size)
		e[i] = 1
		basis[i] = Inverse(e)
	}
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			dot := 0.0
			for x := 0; x < size; x++ {
				dot += basis[i][x] * basis[j][x]
			}
			if math.Abs(dot) > 1e-10 {
				t.Fatalf("basis %d and %d not orthogonal (dot %g)", i, j, dot)
			}
		}
	}
	// And the squared norm of basis i equals its support length.
	for i := 0; i < size; i++ {
		norm := 0.0
		for _, v := range basis[i] {
			norm += v * v
		}
		if want := float64(Support(n, i).Len()); math.Abs(norm-want) > 1e-10 {
			t.Fatalf("basis %d norm^2 %g, want %g", i, norm, want)
		}
	}
}

func TestRangeSumCoefsDisjointRangesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a := randVec(rng, 7)
	hat := Transform(a)
	l, mid, r := 10, 57, 99
	left := RangeSum(hat, l, mid)
	right := RangeSum(hat, mid+1, r)
	whole := RangeSum(hat, l, r)
	if math.Abs(left+right-whole) > 1e-7 {
		t.Errorf("range sums not additive: %g + %g != %g", left, right, whole)
	}
}

func TestTransformIntoMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for n := 0; n <= 10; n++ {
		src := randVec(rng, n)
		want := Transform(src)
		dst := make([]float64, len(src))
		scratch := make([]float64, len(src)/2+1)
		TransformInto(dst, src, scratch)
		for i := range want {
			if math.Abs(dst[i]-want[i]) > 1e-12 {
				t.Fatalf("n=%d differs at %d: %g vs %g", n, i, dst[i], want[i])
			}
		}
	}
}

func TestInverseIntoMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for n := 0; n <= 10; n++ {
		src := randVec(rng, n)
		hat := Transform(src)
		dst := make([]float64, len(src))
		scratch := make([]float64, len(src)/2+1)
		InverseInto(dst, hat, scratch)
		for i := range src {
			if math.Abs(dst[i]-src[i]) > 1e-9 {
				t.Fatalf("n=%d differs at %d: %g vs %g", n, i, dst[i], src[i])
			}
		}
	}
}

func TestIntoVariantsPanicOnBadSizes(t *testing.T) {
	for _, f := range []func(){
		func() { TransformInto(make([]float64, 4), make([]float64, 8), make([]float64, 4)) },
		func() { TransformInto(make([]float64, 8), make([]float64, 8), make([]float64, 2)) },
		func() { InverseInto(make([]float64, 4), make([]float64, 8), make([]float64, 4)) },
		func() { InverseInto(make([]float64, 8), make([]float64, 8), make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad sizes did not panic")
				}
			}()
			f()
		}()
	}
}
