// Package bitutil provides small power-of-two and bit arithmetic helpers
// shared by the wavelet packages. All sizes in this repository (vector
// lengths, chunk edges, block sizes) are powers of two, so these helpers are
// used pervasively and panic loudly on violations rather than guessing.
package bitutil

import (
	"fmt"
	"math/bits"
)

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x int) bool {
	return x > 0 && x&(x-1) == 0
}

// Log2 returns log2(x) for a positive power of two x.
// It panics if x is not a positive power of two.
func Log2(x int) int {
	if !IsPow2(x) {
		panic(fmt.Sprintf("bitutil: Log2 of non-power-of-two %d", x))
	}
	return bits.TrailingZeros(uint(x))
}

// Pow2 returns 2^e for e >= 0. It panics on negative e or overflow.
func Pow2(e int) int {
	if e < 0 || e >= bits.UintSize-2 {
		panic(fmt.Sprintf("bitutil: Pow2 exponent %d out of range", e))
	}
	return 1 << uint(e)
}

// FloorLog2 returns the largest e such that 2^e <= x, for x >= 1.
func FloorLog2(x int) int {
	if x < 1 {
		panic(fmt.Sprintf("bitutil: FloorLog2 of %d", x))
	}
	return bits.Len(uint(x)) - 1
}

// CeilLog2 returns the smallest e such that 2^e >= x, for x >= 1.
func CeilLog2(x int) int {
	if x < 1 {
		panic(fmt.Sprintf("bitutil: CeilLog2 of %d", x))
	}
	if x == 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// NextPow2 returns the smallest power of two >= x, for x >= 1.
func NextPow2(x int) int {
	return Pow2(CeilLog2(x))
}

// CeilDiv returns ceil(a/b) for b > 0 and a >= 0.
func CeilDiv(a, b int) int {
	if b <= 0 || a < 0 {
		panic(fmt.Sprintf("bitutil: CeilDiv(%d, %d)", a, b))
	}
	return (a + b - 1) / b
}

// IntPow returns base^exp for exp >= 0 using binary exponentiation.
// It panics on overflow of int.
func IntPow(base, exp int) int {
	if exp < 0 {
		panic(fmt.Sprintf("bitutil: IntPow negative exponent %d", exp))
	}
	result := 1
	b := base
	for e := exp; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = mulCheck(result, b)
		}
		if e > 1 {
			b = mulCheck(b, b)
		}
	}
	return result
}

func mulCheck(a, b int) int {
	hi, lo := bits.Mul64(uint64(abs64(a)), uint64(abs64(b)))
	if hi != 0 || lo > uint64(maxInt) {
		panic(fmt.Sprintf("bitutil: IntPow overflow %d*%d", a, b))
	}
	r := a * b
	return r
}

const maxInt = int(^uint(0) >> 1)

func abs64(x int) int64 {
	if x < 0 {
		return int64(-x)
	}
	return int64(x)
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
