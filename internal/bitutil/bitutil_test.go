package bitutil

import (
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := map[int]bool{
		-4: false, -1: false, 0: false,
		1: true, 2: true, 3: false, 4: true, 5: false,
		6: false, 8: true, 1024: true, 1025: false,
	}
	for x, want := range cases {
		if got := IsPow2(x); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", x, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	for e := 0; e < 30; e++ {
		if got := Log2(1 << uint(e)); got != e {
			t.Errorf("Log2(2^%d) = %d", e, got)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	for _, x := range []int{0, -1, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Log2(%d) did not panic", x)
				}
			}()
			Log2(x)
		}()
	}
}

func TestPow2(t *testing.T) {
	if Pow2(0) != 1 || Pow2(1) != 2 || Pow2(10) != 1024 {
		t.Fatal("Pow2 basic values wrong")
	}
}

func TestPow2PanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pow2(-1) did not panic")
		}
	}()
	Pow2(-1)
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{
		1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 7: 3, 8: 3, 9: 4, 1024: 10, 1025: 11,
	}
	for x, want := range cases {
		if got := CeilLog2(x); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 100: 128}
	for x, want := range cases {
		if got := NextPow2(x); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := [][3]int{{0, 1, 0}, {1, 1, 1}, {5, 2, 3}, {6, 2, 3}, {7, 8, 1}, {8, 8, 1}, {9, 8, 2}}
	for _, c := range cases {
		if got := CeilDiv(c[0], c[1]); got != c[2] {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestIntPow(t *testing.T) {
	cases := [][3]int{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {10, 3, 1000}, {1, 100, 1}, {7, 1, 7},
	}
	for _, c := range cases {
		if got := IntPow(c[0], c[1]); got != c[2] {
			t.Errorf("IntPow(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestIntPowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntPow(2, 70) did not panic")
		}
	}()
	IntPow(2, 70)
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Min/Max wrong")
	}
}

func TestQuickPow2RoundTrip(t *testing.T) {
	f := func(e uint8) bool {
		x := int(e % 40)
		return Log2(Pow2(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNextPow2Bounds(t *testing.T) {
	f := func(v uint32) bool {
		x := int(v%1_000_000) + 1
		p := NextPow2(x)
		return IsPow2(p) && p >= x && (p == 1 || p/2 < x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCeilDiv(t *testing.T) {
	f := func(a uint16, b uint16) bool {
		x, y := int(a), int(b%1000)+1
		q := CeilDiv(x, y)
		return q*y >= x && (q-1)*y < x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
