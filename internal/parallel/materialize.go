package parallel

import (
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// writeGroup bounds how many computed blocks the materialization consumer
// buffers before flushing them as one vectored write (mirrors the group
// size tile.MaterializeStandard uses on the sequential path).
const writeGroup = 64

// MaterializeStandard is tile.MaterializeStandard with block computation
// fanned out to the worker pool. Writes stay on the consumer goroutine in
// ascending block order — the exact physical write sequence of the
// sequential path, which durable stores' crash campaigns rely on — but are
// flushed in bounded groups so each group is one vectored write over a
// consecutive id run.
func MaterializeStandard(st *tile.Store, hat *ndarray.Array, opts Options) error {
	fill, numBlocks, err := tile.StandardBlockFiller(st.Tiling(), hat)
	if err != nil {
		return err
	}
	blockSize := st.Tiling().BlockSize()
	ids := make([]int, 0, writeGroup)
	group := make([][]float64, 0, writeGroup)
	flush := func() error {
		if len(ids) == 0 {
			return nil
		}
		if err := st.WriteTiles(ids, group); err != nil {
			return err
		}
		ids, group = ids[:0], group[:0]
		return nil
	}
	err = Run(numBlocks, opts,
		func(block int) ([]float64, error) {
			data := make([]float64, blockSize)
			fill(block, data)
			return data, nil
		},
		func(block int, data []float64) error {
			ids = append(ids, block)
			group = append(group, data)
			if len(ids) >= writeGroup {
				return flush()
			}
			return nil
		})
	if err != nil {
		return err
	}
	return flush()
}

// MaterializeNonStandard is tile.MaterializeNonStandard with the per-tile
// scaling reconstructions (the expensive part: a quadtree descent per
// block) fanned out to the worker pool; layout stays sequential and the
// finished blocks — one consecutive run 0..numBlocks-1 — land in a single
// vectored write.
func MaterializeNonStandard(st *tile.Store, hat *ndarray.Array, opts Options) error {
	blocks, scaling, err := tile.NonStandardBlocks(st.Tiling(), hat)
	if err != nil {
		return err
	}
	if len(blocks) > 1 {
		err = Run(len(blocks)-1, opts,
			func(seq int) (float64, error) { return scaling(seq + 1), nil },
			func(seq int, v float64) error {
				blocks[seq+1][0] = v
				return nil
			})
		if err != nil {
			return err
		}
	}
	ids := make([]int, len(blocks))
	for id := range blocks {
		ids[id] = id
	}
	return st.WriteTiles(ids, blocks)
}
