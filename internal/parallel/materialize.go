package parallel

import (
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// MaterializeStandard is tile.MaterializeStandard with block computation
// fanned out to the worker pool. Writes stay on the consumer goroutine in
// ascending block order — the exact physical write sequence of the
// sequential path, which durable stores' crash campaigns rely on — so no
// SerialApply special-casing is needed here.
func MaterializeStandard(st *tile.Store, hat *ndarray.Array, opts Options) error {
	fill, numBlocks, err := tile.StandardBlockFiller(st.Tiling(), hat)
	if err != nil {
		return err
	}
	blockSize := st.Tiling().BlockSize()
	return Run(numBlocks, opts,
		func(block int) ([]float64, error) {
			data := make([]float64, blockSize)
			fill(block, data)
			return data, nil
		},
		func(block int, data []float64) error {
			return st.WriteTile(block, data)
		})
}

// MaterializeNonStandard is tile.MaterializeNonStandard with the per-tile
// scaling reconstructions (the expensive part: a quadtree descent per
// block) fanned out to the worker pool; layout and writes stay sequential.
func MaterializeNonStandard(st *tile.Store, hat *ndarray.Array, opts Options) error {
	blocks, scaling, err := tile.NonStandardBlocks(st.Tiling(), hat)
	if err != nil {
		return err
	}
	if len(blocks) > 1 {
		err = Run(len(blocks)-1, opts,
			func(seq int) (float64, error) { return scaling(seq + 1), nil },
			func(seq int, v float64) error {
				blocks[seq+1][0] = v
				return nil
			})
		if err != nil {
			return err
		}
	}
	for id, b := range blocks {
		if err := st.WriteTile(id, b); err != nil {
			return err
		}
	}
	return nil
}
