package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

func TestRunDeliversInAscendingOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			var produced atomic.Int64
			var got []int
			err := Run(n, Options{Workers: workers},
				func(seq int) (int, error) {
					produced.Add(1)
					return seq * seq, nil
				},
				func(seq, v int) error {
					if v != seq*seq {
						t.Errorf("consume(%d) got %d, want %d", seq, v, seq*seq)
					}
					got = append(got, seq)
					return nil
				})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if produced.Load() != n {
				t.Fatalf("produced %d items, want %d", produced.Load(), n)
			}
			if len(got) != n {
				t.Fatalf("consumed %d items, want %d", len(got), n)
			}
			for i, seq := range got {
				if seq != i {
					t.Fatalf("consume order %v is not ascending at %d", got[:i+1], i)
				}
			}
		})
	}
}

func TestRunZeroAndOneItems(t *testing.T) {
	if err := Run(0, Options{Workers: 4}, func(int) (int, error) { return 0, nil },
		func(int, int) error { t.Fatal("consume on empty run"); return nil }); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	calls := 0
	err := Run(1, Options{Workers: 4},
		func(seq int) (int, error) { return seq + 7, nil },
		func(seq, v int) error { calls++; return nil })
	if err != nil || calls != 1 {
		t.Fatalf("single-item run: err=%v calls=%d", err, calls)
	}
}

func TestRunProduceErrorWins(t *testing.T) {
	wantErr := errors.New("boom")
	err := Run(50, Options{Workers: 4},
		func(seq int) (int, error) {
			if seq == 13 {
				return 0, wantErr
			}
			return seq, nil
		},
		func(seq, v int) error {
			if seq >= 13 {
				t.Errorf("consumed seq %d after the failing seq", seq)
			}
			return nil
		})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Run error = %v, want %v", err, wantErr)
	}
}

func TestRunConsumeErrorHalts(t *testing.T) {
	wantErr := errors.New("sink full")
	consumed := 0
	err := Run(200, Options{Workers: 4},
		func(seq int) (int, error) { return seq, nil },
		func(seq, v int) error {
			consumed++
			if seq == 5 {
				return wantErr
			}
			return nil
		})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Run error = %v, want %v", err, wantErr)
	}
	if consumed != 6 {
		t.Fatalf("consumed %d items, want 6 (halt after error)", consumed)
	}
}

func TestRunBoundsInFlight(t *testing.T) {
	const workers, queue = 4, 6
	var inFlight, peak atomic.Int64
	err := Run(300, Options{Workers: workers, ChunkQueue: queue},
		func(seq int) (int, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			return seq, nil
		},
		func(seq, v int) error {
			inFlight.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p := peak.Load(); p > queue {
		t.Fatalf("peak in-flight %d exceeds queue bound %d", p, queue)
	}
}

// newTestStore builds a small standard-tiled store over an in-memory backing.
func newTestStore(t *testing.T) *tile.Store {
	t.Helper()
	tiling := tile.NewStandard([]int{4, 4}, 1)
	st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func randomBuckets(rng *rand.Rand, numBlocks, blockSize int) []tile.Bucket {
	bs := tile.NewBucketSet(blockSize)
	for i := 0; i < 12; i++ {
		bs.Add(rng.Intn(numBlocks), rng.Intn(blockSize), rng.NormFloat64())
	}
	return bs.Buckets()
}

func TestApplierMatchesInlineApply(t *testing.T) {
	for _, opts := range []Options{
		{Workers: 1},
		{Workers: 4, SerialApply: true},
		{Workers: 4, Appliers: 3},
		{Workers: 8},
	} {
		t.Run(fmt.Sprintf("w%d_a%d_serial%v", opts.Workers, opts.Appliers, opts.SerialApply), func(t *testing.T) {
			want := newTestStore(t)
			got := newTestStore(t)
			tiling := want.Tiling()

			rng := rand.New(rand.NewSource(42))
			jobs := make([][]tile.Bucket, 64)
			for i := range jobs {
				jobs[i] = randomBuckets(rng, tiling.NumBlocks(), tiling.BlockSize())
			}
			for _, job := range jobs {
				if err := want.ApplyBuckets(job); err != nil {
					t.Fatal(err)
				}
			}
			a := NewApplier(got, opts)
			for _, job := range jobs {
				if err := a.Apply(job); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			for b := 0; b < tiling.NumBlocks(); b++ {
				wd, err := want.ReadTile(b)
				if err != nil {
					t.Fatal(err)
				}
				gd, err := got.ReadTile(b)
				if err != nil {
					t.Fatal(err)
				}
				for s := range wd {
					if wd[s] != gd[s] {
						t.Fatalf("block %d slot %d: sharded %v != inline %v", b, s, gd[s], wd[s])
					}
				}
			}
		})
	}
}

func TestApplierSurfacesStorageErrors(t *testing.T) {
	tiling := tile.NewStandard([]int{4, 4}, 1)
	faulty := storage.NewFaulty(storage.NewMemStore(tiling.BlockSize()))
	st, err := tile.NewStore(faulty, tiling)
	if err != nil {
		t.Fatal(err)
	}
	faulty.FailWriteAfter(3)

	a := NewApplier(st, Options{Workers: 4})
	rng := rand.New(rand.NewSource(7))
	var applyErr error
	for i := 0; i < 32 && applyErr == nil; i++ {
		applyErr = a.Apply(randomBuckets(rng, tiling.NumBlocks(), tiling.BlockSize()))
	}
	if cerr := a.Close(); applyErr == nil {
		applyErr = cerr
	}
	if !errors.Is(applyErr, storage.ErrInjected) {
		t.Fatalf("applier error = %v, want ErrInjected", applyErr)
	}
}
