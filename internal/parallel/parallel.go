// Package parallel is the bounded worker pool and tile-sharded delta
// applier behind the maintenance engines.
//
// The chunked transformation of Results 1–2 is embarrassingly parallel on
// the CPU side: chunks are disjoint, each chunk's transform depends only on
// its own cells, and its SHIFT-SPLIT output is a set of per-tile delta
// buckets (tile.BucketSet). What must stay sequential is the order in which
// those buckets meet storage, because (a) floating-point addition is not
// associative, so bit-identical results across worker counts require a fixed
// per-tile accumulation order, and (b) the I/O accounting of the paper — one
// read and one write per touched tile per chunk — and the journal's
// deterministic write sequence both assume chunk-ordered application.
//
// Run therefore fans chunk transforms out to a bounded pool but delivers
// results to a single consumer in strictly ascending chunk order; Applier
// then shards buckets by destination tile so that every tile is
// read-modify-written by exactly one goroutine, with the per-tile operation
// order still the chunk order. With Workers <= 1 both degrade to fully
// inline sequential execution over the very same kernels, which is the
// determinism argument: the parallel schedule performs the same
// floating-point operations in the same per-tile order as the sequential
// one, so the transforms are bit-identical and the I/O counters equal.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// Options configures a maintenance run.
type Options struct {
	// Workers is the number of chunk-transform goroutines; <= 0 selects
	// runtime.GOMAXPROCS(0). Workers == 1 runs fully inline (no goroutines).
	Workers int
	// ChunkQueue bounds the transformed-but-unapplied chunks in flight
	// (each holds its bucketed deltas in memory); <= 0 selects 2*Workers.
	ChunkQueue int
	// Appliers is the number of tile shards applying deltas; <= 0 selects
	// min(4, Workers). Ignored when SerialApply is set.
	Appliers int
	// SerialApply forces a single applier so that the physical read/write
	// sequence on the destination store is exactly the sequential engine's
	// (chunk-major, ascending block IDs). Engines set it for storage stacks
	// whose behavior is order-sensitive: the write-back buffer pool (cache
	// hits depend on access order), serve caches, and durable stores (crash
	// campaigns assert a deterministic physical write index sequence).
	SerialApply bool
}

// WorkerCount resolves the Workers default.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// queueDepth resolves the ChunkQueue default, never below workers (a
// smaller window would idle the pool).
func (o Options) queueDepth(workers int) int {
	q := o.ChunkQueue
	if q <= 0 {
		q = 2 * workers
	}
	if q < workers {
		q = workers
	}
	return q
}

// shardCount resolves how many applier goroutines to run; 0 means apply
// inline on the consumer.
func (o Options) shardCount() int {
	w := o.WorkerCount()
	if w <= 1 {
		return 0
	}
	if o.SerialApply {
		return 1
	}
	if o.Appliers > 0 {
		return o.Appliers
	}
	if w < 4 {
		return w
	}
	return 4
}

// item carries one produced result to the reordering consumer.
type item[T any] struct {
	seq int
	v   T
	err error
}

// Run executes produce(seq) for every seq in [0, n) on a bounded worker
// pool and feeds each result to consume in strictly ascending seq order.
// consume runs on the calling goroutine only. At most queueDepth results
// are in flight (being produced or buffered for reordering). The first
// error — by seq order for produce, immediately for consume — cancels the
// run and is returned after all workers have stopped.
//
// With one worker (or n <= 1) everything runs inline on the caller: the
// sequential fallback is the same code path minus the goroutines.
func Run[T any](n int, opts Options, produce func(seq int) (T, error), consume func(seq int, v T) error) error {
	workers := opts.WorkerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for seq := 0; seq < n; seq++ {
			v, err := produce(seq)
			if err != nil {
				return err
			}
			if err := consume(seq, v); err != nil {
				return err
			}
		}
		return nil
	}
	queue := opts.queueDepth(workers)
	jobs := make(chan int)
	results := make(chan item[T], queue)
	tickets := make(chan struct{}, queue)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := range jobs {
				v, err := produce(seq)
				select {
				case results <- item[T]{seq: seq, v: v, err: err}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for seq := 0; seq < n; seq++ {
			select {
			case tickets <- struct{}{}:
			case <-stop:
				return
			}
			select {
			case jobs <- seq:
			case <-stop:
				return
			}
		}
	}()

	// Reorder out-of-order arrivals; tickets are released only when a seq is
	// consumed, which bounds buffered results without deadlock (the ticket
	// holders are always the next `queue` sequence numbers, so the one the
	// consumer waits for is among them).
	pending := make(map[int]item[T], queue)
	var err error
	next := 0
	for next < n && err == nil {
		it, ok := pending[next]
		if !ok {
			it = <-results
			if it.seq != next {
				pending[it.seq] = it
				continue
			}
		} else {
			delete(pending, next)
		}
		if it.err != nil {
			err = it.err
		} else {
			err = consume(it.seq, it.v)
		}
		next++
		<-tickets
	}
	halt()
	wg.Wait()
	return err
}

// Applier folds per-chunk tile buckets into a tile.Store. Buckets are
// sharded by destination block ID so each tile is read-modify-written by
// exactly one goroutine; within a shard, jobs are applied in the order
// Apply was called (the chunk order), so per-tile accumulation order — and
// with it the floating-point result — is independent of the shard count.
// Device-level I/O calls are serialized by a mutex so any BlockStore stack
// is safe underneath; the delta additions run outside it.
//
// With zero shards (Workers <= 1) Apply applies inline, which is also the
// write-order-deterministic path SerialApply approximates with one shard.
type Applier struct {
	st     *tile.Store
	shards []chan applyJob
	ioMu   sync.Mutex
	wg     sync.WaitGroup
	failed atomic.Bool
	errMu  sync.Mutex
	err    error
}

// applyJob is one shard's portion of a chunk's buckets plus the countdown
// hook that fires the chunk's release once every portion has landed.
type applyJob struct {
	buckets []tile.Bucket
	done    func() // nil when the caller passed no release
}

// NewApplier creates an applier for the options' shard count and starts its
// goroutines. Close must be called exactly once to stop them.
func NewApplier(st *tile.Store, opts Options) *Applier {
	a := &Applier{st: st}
	n := opts.shardCount()
	if n <= 0 {
		return a
	}
	depth := opts.queueDepth(opts.WorkerCount())
	a.shards = make([]chan applyJob, n)
	for i := range a.shards {
		ch := make(chan applyJob, depth)
		a.shards[i] = ch
		a.wg.Add(1)
		go a.runShard(ch)
	}
	return a
}

func (a *Applier) runShard(ch chan applyJob) {
	defer a.wg.Done()
	for job := range ch {
		if !a.failed.Load() {
			if err := a.applyJob(job.buckets); err != nil {
				a.setErr(err)
			}
		}
		// The release hook fires whether the job applied or was drained
		// after a failure: either way the shard holds no further reference
		// to the buckets, so their owner may recycle them.
		if job.done != nil {
			job.done()
		}
	}
}

func (a *Applier) applyJob(job []tile.Bucket) error {
	// One vectored read of the job's tiles, deltas applied outside the
	// I/O lock, one vectored write. Each tile belongs to exactly one
	// shard, so nothing can mutate these blocks between the phases, and
	// within the shard jobs still land in chunk order — the per-tile
	// accumulation order (and the floating-point result) is unchanged.
	blocks := make([]int, len(job))
	for i := range job {
		blocks[i] = job[i].Block
	}
	a.ioMu.Lock()
	tiles, err := a.st.ReadTiles(blocks)
	a.ioMu.Unlock()
	if err != nil {
		return err
	}
	for i := range job {
		data := tiles[i]
		for slot, dv := range job[i].Deltas {
			if dv != 0 {
				data[slot] += dv
			}
		}
	}
	a.ioMu.Lock()
	err = a.st.WriteTiles(blocks, tiles)
	a.ioMu.Unlock()
	return err
}

func (a *Applier) setErr(err error) {
	a.errMu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.errMu.Unlock()
	a.failed.Store(true)
}

// Err returns the first shard error, if any.
func (a *Applier) Err() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.err
}

// Apply submits one chunk's buckets (ascending block order, as returned by
// BucketSet.Buckets). It must be called from a single goroutine, in chunk
// order. A previously recorded shard error is returned immediately.
func (a *Applier) Apply(buckets []tile.Bucket) error {
	return a.ApplyReleasing(buckets, nil)
}

// ApplyReleasing is Apply with an ownership hand-back: release (when
// non-nil) is called exactly once, after every shard has finished with the
// buckets — on the inline path synchronously, on the sharded path from
// whichever shard goroutine lands the last portion. The engines use it to
// return pooled per-chunk scratch (the BucketSet backing these buckets)
// without waiting for the asynchronous application to drain.
func (a *Applier) ApplyReleasing(buckets []tile.Bucket, release func()) error {
	if len(a.shards) == 0 {
		err := a.st.ApplyBuckets(buckets)
		if release != nil {
			release()
		}
		return err
	}
	if a.failed.Load() {
		if release != nil {
			release()
		}
		return a.Err()
	}
	if len(a.shards) == 1 {
		if len(buckets) > 0 {
			a.shards[0] <- applyJob{buckets: buckets, done: release}
		} else if release != nil {
			release()
		}
		return nil
	}
	n := len(a.shards)
	parts := make([][]tile.Bucket, n)
	sent := 0
	for i := range buckets {
		s := buckets[i].Block % n
		if parts[s] == nil {
			sent++
		}
		parts[s] = append(parts[s], buckets[i])
	}
	if sent == 0 {
		if release != nil {
			release()
		}
		return nil
	}
	var done func()
	if release != nil {
		var remaining atomic.Int32
		remaining.Store(int32(sent))
		done = func() {
			if remaining.Add(-1) == 0 {
				release()
			}
		}
	}
	for s, part := range parts {
		if len(part) > 0 {
			a.shards[s] <- applyJob{buckets: part, done: done}
		}
	}
	return nil
}

// Close stops the shard goroutines, waits for queued buckets to land, and
// returns the first error any shard hit.
func (a *Applier) Close() error {
	for _, ch := range a.shards {
		close(ch)
	}
	a.wg.Wait()
	return a.Err()
}
