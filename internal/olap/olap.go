// Package olap implements OLAP cube operators directly in the wavelet
// domain for standard-form transforms, in the spirit of Chakrabarti et al.
// [2], which the paper builds on: roll-up (marginalizing a dimension),
// slice (fixing a dimension to one value), and dice (restricting a
// dimension to a dyadic interval) all produce the exact transform of the
// result cube without reconstructing any data.
//
// The key facts, all consequences of the tensor-product structure of the
// standard decomposition:
//
//   - summing the data over dimension t kills every basis function that is
//     a detail along t (details integrate to zero) and scales the rest by
//     N_t, so roll-up is a slice at index 0 times N_t;
//   - fixing dimension t to x combines, for each remaining coefficient, the
//     log N_t + 1 coefficients on x's Lemma-1 path along t;
//   - restricting dimension t to a dyadic interval is a one-dimensional
//     inverse SHIFT-SPLIT along t.
package olap

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

func checkDim(hat *ndarray.Array, dim int) {
	if dim < 0 || dim >= hat.Dims() {
		panic(fmt.Sprintf("olap: dimension %d out of range for %d-d transform", dim, hat.Dims()))
	}
	if hat.Dims() < 2 {
		panic("olap: operators need at least 2 dimensions")
	}
}

// dropDim returns shape without dimension dim.
func dropDim(shape []int, dim int) []int {
	out := make([]int, 0, len(shape)-1)
	for i, s := range shape {
		if i != dim {
			out = append(out, s)
		}
	}
	return out
}

// combine builds the transform of the reduced cube: for every coefficient
// position of the output (all dims except dim), it linearly combines the
// input coefficients whose index along dim is given by targets.
func combine(hat *ndarray.Array, dim int, targets []core.Target) *ndarray.Array {
	outShape := dropDim(hat.Shape(), dim)
	out := ndarray.New(outShape...)
	src := make([]int, hat.Dims())
	out.Each(func(coords []int, _ float64) {
		for i, c := range coords {
			if i < dim {
				src[i] = c
			} else {
				src[i+1] = c
			}
		}
		sum := 0.0
		for _, t := range targets {
			src[dim] = t.Index
			sum += t.Weight * hat.At(src...)
		}
		out.Set(sum, coords...)
	})
	return out
}

// Marginalize returns the standard transform of the cube obtained by
// summing the data over dimension dim (OLAP roll-up). Cost: one pass over
// the N^(d-1) surviving coefficients; no reconstruction.
func Marginalize(hat *ndarray.Array, dim int) *ndarray.Array {
	checkDim(hat, dim)
	n := float64(hat.Extent(dim))
	return combine(hat, dim, []core.Target{{Index: 0, Weight: n}})
}

// Average returns the transform of the data averaged over dimension dim.
func Average(hat *ndarray.Array, dim int) *ndarray.Array {
	checkDim(hat, dim)
	return combine(hat, dim, []core.Target{{Index: 0, Weight: 1}})
}

// Slice returns the standard transform of the (d-1)-dimensional cube
// a[..., x, ...] with dimension dim fixed to x. Each output coefficient
// combines the log N + 1 input coefficients on x's path along dim.
func Slice(hat *ndarray.Array, dim, x int) *ndarray.Array {
	checkDim(hat, dim)
	nd := bitutil.Log2(hat.Extent(dim))
	if x < 0 || x >= hat.Extent(dim) {
		panic(fmt.Sprintf("olap: slice index %d out of [0,%d)", x, hat.Extent(dim)))
	}
	path := haar.PointPath(nd, x)
	targets := make([]core.Target, len(path))
	for i, p := range path {
		targets[i] = core.Target{Index: p.Index, Weight: p.Weight}
	}
	return combine(hat, dim, targets)
}

// Dice returns the standard transform of the cube restricted to the dyadic
// interval iv along dimension dim (the other dimensions keep their full
// extent). This is a one-dimensional inverse SHIFT-SPLIT along dim.
func Dice(hat *ndarray.Array, dim int, iv dyadic.Interval) *ndarray.Array {
	checkDim(hat, dim)
	shape := hat.Shape()
	block := make(dyadic.Range, len(shape))
	for t, s := range shape {
		if t == dim {
			block[t] = iv
		} else {
			block[t] = dyadic.NewInterval(bitutil.Log2(s), 0)
		}
	}
	return core.ExtractStandard(hat, block)
}

// PivotSum returns the 1-d transform of the totals along dimension keep:
// all other dimensions are rolled up. This is the "grand totals per X"
// query of OLAP dashboards, computed with d-1 marginalizations.
func PivotSum(hat *ndarray.Array, keep int) *ndarray.Array {
	checkDim(hat, keep)
	cur := hat
	dim := 0
	for cur.Dims() > 1 {
		if dim == keep {
			dim++
			continue
		}
		cur = Marginalize(cur, dim)
		if dim < keep {
			keep--
		}
		dim = 0
	}
	return cur
}
