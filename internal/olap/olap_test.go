package olap

import (
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func randArray(rng *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64() * 10
	}
	return a
}

// marginalizeBrute sums the data over dim in the original domain.
func marginalizeBrute(a *ndarray.Array, dim int) *ndarray.Array {
	out := ndarray.New(dropDim(a.Shape(), dim)...)
	a.Each(func(coords []int, v float64) {
		reduced := make([]int, 0, len(coords)-1)
		for i, c := range coords {
			if i != dim {
				reduced = append(reduced, c)
			}
		}
		out.Add(v, reduced...)
	})
	return out
}

func TestMarginalizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randArray(rng, 8, 16, 4)
	hat := wavelet.TransformStandard(a)
	for dim := 0; dim < 3; dim++ {
		got := wavelet.InverseStandard(Marginalize(hat, dim))
		want := marginalizeBrute(a, dim)
		if !got.EqualApprox(want, 1e-7) {
			t.Errorf("dim %d: max diff %g", dim, got.MaxAbsDiff(want))
		}
	}
}

func TestMarginalizeIsExactTransform(t *testing.T) {
	// The output must be the transform of the rolled-up cube, coefficient
	// by coefficient — not merely invert correctly.
	rng := rand.New(rand.NewSource(2))
	a := randArray(rng, 8, 8)
	hat := wavelet.TransformStandard(a)
	got := Marginalize(hat, 1)
	want := wavelet.TransformStandard(marginalizeBrute(a, 1))
	if !got.EqualApprox(want, 1e-8) {
		t.Errorf("max diff %g", got.MaxAbsDiff(want))
	}
}

func TestAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randArray(rng, 8, 4)
	hat := wavelet.TransformStandard(a)
	got := wavelet.InverseStandard(Average(hat, 1))
	want := marginalizeBrute(a, 1)
	for i := range want.Data() {
		want.Data()[i] /= 4
	}
	if !got.EqualApprox(want, 1e-8) {
		t.Errorf("max diff %g", got.MaxAbsDiff(want))
	}
}

func TestSliceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randArray(rng, 8, 16, 4)
	hat := wavelet.TransformStandard(a)
	for dim := 0; dim < 3; dim++ {
		for _, x := range []int{0, a.Extent(dim) / 2, a.Extent(dim) - 1} {
			got := wavelet.InverseStandard(Slice(hat, dim, x))
			want := ndarray.New(dropDim(a.Shape(), dim)...)
			a.Each(func(coords []int, v float64) {
				if coords[dim] != x {
					return
				}
				reduced := make([]int, 0, 2)
				for i, c := range coords {
					if i != dim {
						reduced = append(reduced, c)
					}
				}
				want.Set(v, reduced...)
			})
			if !got.EqualApprox(want, 1e-7) {
				t.Errorf("dim %d x %d: max diff %g", dim, x, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestDiceMatchesSubCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randArray(rng, 16, 8)
	hat := wavelet.TransformStandard(a)
	iv := dyadic.NewInterval(2, 2) // [8, 12)
	got := Dice(hat, 0, iv)
	want := wavelet.TransformStandard(a.SubCopy([]int{8, 0}, []int{4, 8}))
	if !got.EqualApprox(want, 1e-7) {
		t.Errorf("max diff %g", got.MaxAbsDiff(want))
	}
}

func TestPivotSum(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randArray(rng, 4, 8, 4)
	hat := wavelet.TransformStandard(a)
	for keep := 0; keep < 3; keep++ {
		got := wavelet.InverseStandard(PivotSum(hat, keep))
		want := ndarray.New(a.Extent(keep))
		a.Each(func(coords []int, v float64) {
			want.Add(v, coords[keep])
		})
		if !got.EqualApprox(want, 1e-7) {
			t.Errorf("keep %d: max diff %g", keep, got.MaxAbsDiff(want))
		}
	}
}

func TestRollUpChain(t *testing.T) {
	// Marginalizing twice must match the 2-step brute force.
	rng := rand.New(rand.NewSource(7))
	a := randArray(rng, 4, 4, 8)
	hat := wavelet.TransformStandard(a)
	got := wavelet.InverseStandard(Marginalize(Marginalize(hat, 0), 0))
	want := marginalizeBrute(marginalizeBrute(a, 0), 0)
	if !got.EqualApprox(want, 1e-7) {
		t.Errorf("max diff %g", got.MaxAbsDiff(want))
	}
}

func TestOperatorsPanicOn1D(t *testing.T) {
	hat := ndarray.New(8)
	defer func() {
		if recover() == nil {
			t.Error("1-d marginalize did not panic")
		}
	}()
	Marginalize(hat, 0)
}

func TestSliceOutOfRangePanics(t *testing.T) {
	hat := ndarray.New(8, 8)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range slice did not panic")
		}
	}()
	Slice(hat, 0, 8)
}

func TestDiceAlongSecondDim(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randArray(rng, 8, 16)
	hat := wavelet.TransformStandard(a)
	iv := dyadic.NewInterval(3, 1) // [8,16) along dim 1
	got := Dice(hat, 1, iv)
	want := wavelet.TransformStandard(a.SubCopy([]int{0, 8}, []int{8, 8}))
	if !got.EqualApprox(want, 1e-7) {
		t.Errorf("dice along dim 1 differs by %g", got.MaxAbsDiff(want))
	}
}

func TestPivotSum4D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randArray(rng, 2, 4, 2, 4)
	hat := wavelet.TransformStandard(a)
	for keep := 0; keep < 4; keep++ {
		got := wavelet.InverseStandard(PivotSum(hat, keep))
		want := ndarray.New(a.Extent(keep))
		a.Each(func(coords []int, v float64) {
			want.Add(v, coords[keep])
		})
		if !got.EqualApprox(want, 1e-7) {
			t.Errorf("keep=%d: 4-d pivot differs by %g", keep, got.MaxAbsDiff(want))
		}
	}
}

func TestMarginalizeThenSliceCommute(t *testing.T) {
	// Slicing dim A then marginalizing dim B must equal doing it the other
	// way around (on a 3-d cube with A != B).
	rng := rand.New(rand.NewSource(10))
	a := randArray(rng, 4, 8, 4)
	hat := wavelet.TransformStandard(a)
	// Slice dim 2 at x=1, then marginalize dim 0 (of the reduced cube).
	p1 := Marginalize(Slice(hat, 2, 1), 0)
	// Marginalize dim 0, then slice dim 1 (old dim 2) at x=1.
	p2 := Slice(Marginalize(hat, 0), 1, 1)
	if !p1.EqualApprox(p2, 1e-8) {
		t.Errorf("operators do not commute: max diff %g", p1.MaxAbsDiff(p2))
	}
}
