// Package dyadic models dyadic intervals and multidimensional dyadic ranges.
//
// A dyadic interval (Definition 3 of the paper) is I[j,k] =
// [k*2^j, (k+1)*2^j - 1] for 0 <= j <= n and 0 <= k < 2^(n-j). Dyadic
// intervals are exactly the support intervals of Haar wavelet and scaling
// coefficients (Property 1), which makes them the unit of work of the SHIFT
// and SPLIT operations: SHIFT-SPLIT relates the transform of a dyadic
// subregion to the transform of the enclosing vector.
package dyadic

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
)

// Interval is the dyadic interval I[j,k] = [k*2^j, (k+1)*2^j - 1].
// Level is j (the log2 of the length); Pos is k (the translation).
type Interval struct {
	Level int
	Pos   int
}

// NewInterval returns I[level,pos], validating level >= 0 and pos >= 0.
func NewInterval(level, pos int) Interval {
	if level < 0 || pos < 0 {
		panic(fmt.Sprintf("dyadic: invalid interval level=%d pos=%d", level, pos))
	}
	return Interval{Level: level, Pos: pos}
}

// FromRange returns the dyadic interval covering [start, start+length) and
// reports whether that range is in fact dyadic (length a power of two and
// start aligned to it).
func FromRange(start, length int) (Interval, bool) {
	if start < 0 || !bitutil.IsPow2(length) {
		return Interval{}, false
	}
	if start%length != 0 {
		return Interval{}, false
	}
	return Interval{Level: bitutil.Log2(length), Pos: start / length}, true
}

// Start returns the first index of the interval.
func (iv Interval) Start() int { return iv.Pos << uint(iv.Level) }

// End returns the last index of the interval (inclusive).
func (iv Interval) End() int { return iv.Start() + iv.Len() - 1 }

// Len returns the number of points covered, 2^Level.
func (iv Interval) Len() int { return 1 << uint(iv.Level) }

// Contains reports whether index i lies inside the interval.
func (iv Interval) Contains(i int) bool { return i >= iv.Start() && i <= iv.End() }

// Covers reports whether iv completely contains other (Definition 2).
func (iv Interval) Covers(other Interval) bool {
	return iv.Level >= other.Level && other.Pos>>uint(iv.Level-other.Level) == iv.Pos
}

// Overlaps reports whether the two intervals share any point. For dyadic
// intervals this happens iff one covers the other.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Covers(other) || other.Covers(iv)
}

// Parent returns the dyadic interval one level up that covers iv.
func (iv Interval) Parent() Interval {
	return Interval{Level: iv.Level + 1, Pos: iv.Pos / 2}
}

// Left and Right return the two child intervals one level down.
// They panic at level 0.
func (iv Interval) Left() Interval {
	if iv.Level == 0 {
		panic("dyadic: Left of level-0 interval")
	}
	return Interval{Level: iv.Level - 1, Pos: 2 * iv.Pos}
}

// Right returns the right child interval. See Left.
func (iv Interval) Right() Interval {
	if iv.Level == 0 {
		panic("dyadic: Right of level-0 interval")
	}
	return Interval{Level: iv.Level - 1, Pos: 2*iv.Pos + 1}
}

// IsLeftChild reports whether iv is the left child of its parent,
// i.e. whether Pos is even.
func (iv Interval) IsLeftChild() bool { return iv.Pos%2 == 0 }

// AncestorAt returns the dyadic interval at the given level >= iv.Level
// that covers iv.
func (iv Interval) AncestorAt(level int) Interval {
	if level < iv.Level {
		panic(fmt.Sprintf("dyadic: AncestorAt level %d below interval level %d", level, iv.Level))
	}
	return Interval{Level: level, Pos: iv.Pos >> uint(level-iv.Level)}
}

// String renders the interval as I[j,k]=[start,end].
func (iv Interval) String() string {
	return fmt.Sprintf("I[%d,%d]=[%d,%d]", iv.Level, iv.Pos, iv.Start(), iv.End())
}

// Decompose splits an arbitrary half-open range [start, end) inside a domain
// of size 2^n into the minimal set of maximal disjoint dyadic intervals,
// ordered by start. An arbitrary selection range can always be seen as a
// collection of dyadic ranges (paper §5.4); this is that collection.
func Decompose(start, end int) []Interval {
	if start < 0 || end < start {
		panic(fmt.Sprintf("dyadic: Decompose invalid range [%d,%d)", start, end))
	}
	var out []Interval
	for start < end {
		// Largest power of two that divides start and fits in end-start.
		level := 0
		for {
			next := level + 1
			size := 1 << uint(next)
			if start%size != 0 || start+size > end {
				break
			}
			level = next
		}
		out = append(out, Interval{Level: level, Pos: start >> uint(level)})
		start += 1 << uint(level)
	}
	return out
}

// Range is a multidimensional dyadic range: the cross product of one dyadic
// interval per dimension (paper §4.1).
type Range []Interval

// NewCubeRange returns the cubic dyadic range with the same level in every
// dimension, positioned at pos (one entry per dimension).
func NewCubeRange(level int, pos []int) Range {
	r := make(Range, len(pos))
	for i, p := range pos {
		r[i] = NewInterval(level, p)
	}
	return r
}

// Dims returns the dimensionality of the range.
func (r Range) Dims() int { return len(r) }

// Volume returns the number of cells covered.
func (r Range) Volume() int {
	v := 1
	for _, iv := range r {
		v *= iv.Len()
	}
	return v
}

// IsCubic reports whether all dimensions share one level.
func (r Range) IsCubic() bool {
	for _, iv := range r[1:] {
		if iv.Level != r[0].Level {
			return false
		}
	}
	return true
}

// Start returns the lower corner of the range.
func (r Range) Start() []int {
	s := make([]int, len(r))
	for i, iv := range r {
		s[i] = iv.Start()
	}
	return s
}

// Shape returns the edge lengths of the range.
func (r Range) Shape() []int {
	s := make([]int, len(r))
	for i, iv := range r {
		s[i] = iv.Len()
	}
	return s
}

// Covers reports whether r completely contains other in every dimension.
func (r Range) Covers(other Range) bool {
	if len(r) != len(other) {
		return false
	}
	for i := range r {
		if !r[i].Covers(other[i]) {
			return false
		}
	}
	return true
}

// String renders the range as a cross product of intervals.
func (r Range) String() string {
	s := ""
	for i, iv := range r {
		if i > 0 {
			s += " x "
		}
		s += iv.String()
	}
	return s
}

// Contains reports whether the range covers the given point in every
// dimension.
func (r Range) Contains(point []int) bool {
	if len(point) != len(r) {
		return false
	}
	for i, iv := range r {
		if !iv.Contains(point[i]) {
			return false
		}
	}
	return true
}

// Intersect returns the common dyadic interval of two overlapping
// intervals (the smaller of the two, since dyadic intervals are nested or
// disjoint) and reports whether they overlap at all.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	if iv.Covers(other) {
		return other, true
	}
	if other.Covers(iv) {
		return iv, true
	}
	return Interval{}, false
}
