package dyadic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(3, 2) // [16, 23]
	if iv.Start() != 16 || iv.End() != 23 || iv.Len() != 8 {
		t.Fatalf("interval geometry wrong: %v start=%d end=%d len=%d", iv, iv.Start(), iv.End(), iv.Len())
	}
	if !iv.Contains(16) || !iv.Contains(23) || iv.Contains(15) || iv.Contains(24) {
		t.Error("Contains boundaries wrong")
	}
}

func TestFromRange(t *testing.T) {
	iv, ok := FromRange(16, 8)
	if !ok || iv != NewInterval(3, 2) {
		t.Fatalf("FromRange(16,8) = %v, %v", iv, ok)
	}
	if _, ok := FromRange(17, 8); ok {
		t.Error("unaligned range accepted")
	}
	if _, ok := FromRange(16, 6); ok {
		t.Error("non-power-of-two length accepted")
	}
	if _, ok := FromRange(-8, 8); ok {
		t.Error("negative start accepted")
	}
}

func TestCovers(t *testing.T) {
	// w[2,0] covers w[1,0] and w[1,1] (paper's example after Definition 2).
	big := NewInterval(2, 0)
	if !big.Covers(NewInterval(1, 0)) || !big.Covers(NewInterval(1, 1)) {
		t.Error("level-2 interval should cover both level-1 children")
	}
	if big.Covers(NewInterval(1, 2)) {
		t.Error("should not cover sibling subtree")
	}
	if !big.Covers(big) {
		t.Error("interval should cover itself")
	}
	if NewInterval(1, 0).Covers(big) {
		t.Error("child cannot cover parent")
	}
}

func TestParentChildRoundTrip(t *testing.T) {
	for level := 1; level < 6; level++ {
		for pos := 0; pos < 8; pos++ {
			iv := NewInterval(level, pos)
			if iv.Left().Parent() != iv || iv.Right().Parent() != iv {
				t.Fatalf("parent/child round trip failed at %v", iv)
			}
			if !iv.Left().IsLeftChild() || iv.Right().IsLeftChild() {
				t.Fatalf("IsLeftChild wrong at %v", iv)
			}
		}
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	iv := NewInterval(4, 3)
	l, r := iv.Left(), iv.Right()
	if l.Start() != iv.Start() || r.End() != iv.End() || l.End()+1 != r.Start() {
		t.Fatalf("children %v,%v do not partition %v", l, r, iv)
	}
}

func TestLevelZeroChildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Left of level-0 did not panic")
		}
	}()
	NewInterval(0, 5).Left()
}

func TestAncestorAt(t *testing.T) {
	iv := NewInterval(0, 13) // point 13
	if got := iv.AncestorAt(2); got != NewInterval(2, 3) {
		t.Errorf("AncestorAt(2) = %v", got)
	}
	if got := iv.AncestorAt(0); got != iv {
		t.Errorf("AncestorAt(0) = %v", got)
	}
	anc := iv.AncestorAt(4)
	if !anc.Covers(iv) {
		t.Error("ancestor does not cover")
	}
}

func TestOverlaps(t *testing.T) {
	a := NewInterval(2, 1) // [4,7]
	b := NewInterval(1, 2) // [4,5]
	c := NewInterval(1, 4) // [8,9]
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested intervals should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint intervals should not overlap")
	}
}

func TestDecomposeExact(t *testing.T) {
	// [3, 11) -> [3,3] [4,7] [8,9] [10,10]
	got := Decompose(3, 11)
	want := []Interval{{0, 3}, {2, 1}, {1, 4}, {0, 10}}
	if len(got) != len(want) {
		t.Fatalf("Decompose(3,11) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decompose(3,11)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDecomposeEmpty(t *testing.T) {
	if got := Decompose(5, 5); len(got) != 0 {
		t.Errorf("empty range produced %v", got)
	}
}

func TestDecomposeWholeDomain(t *testing.T) {
	got := Decompose(0, 64)
	if len(got) != 1 || got[0] != NewInterval(6, 0) {
		t.Errorf("Decompose(0,64) = %v", got)
	}
}

func TestDecomposeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		start := rng.Intn(1024)
		end := start + rng.Intn(1024)
		ivs := Decompose(start, end)
		// Intervals must tile [start,end) exactly, in order.
		pos := start
		for _, iv := range ivs {
			if iv.Start() != pos {
				t.Fatalf("gap/overlap at %v (pos=%d) for [%d,%d)", iv, pos, start, end)
			}
			pos = iv.End() + 1
		}
		if pos != end {
			t.Fatalf("decomposition of [%d,%d) ends at %d", start, end, pos)
		}
		// Minimality: no two adjacent same-level intervals that could merge.
		for i := 1; i < len(ivs); i++ {
			a, b := ivs[i-1], ivs[i]
			if a.Level == b.Level && a.Pos+1 == b.Pos && a.IsLeftChild() {
				t.Fatalf("non-minimal decomposition: %v + %v mergeable", a, b)
			}
		}
	}
}

func TestRangeBasics(t *testing.T) {
	r := NewCubeRange(2, []int{1, 3})
	if r.Dims() != 2 || r.Volume() != 16 || !r.IsCubic() {
		t.Fatalf("range geometry wrong: %v", r)
	}
	if s := r.Start(); s[0] != 4 || s[1] != 12 {
		t.Errorf("Start = %v", s)
	}
	if sh := r.Shape(); sh[0] != 4 || sh[1] != 4 {
		t.Errorf("Shape = %v", sh)
	}
}

func TestRangeCovers(t *testing.T) {
	big := Range{NewInterval(3, 0), NewInterval(3, 1)}
	small := Range{NewInterval(1, 2), NewInterval(2, 2)}
	if !big.Covers(small) {
		t.Error("big should cover small")
	}
	if small.Covers(big) {
		t.Error("small should not cover big")
	}
	if big.Covers(Range{NewInterval(3, 0)}) {
		t.Error("dimension mismatch should not cover")
	}
}

func TestRangeNonCubic(t *testing.T) {
	r := Range{NewInterval(2, 0), NewInterval(3, 0)}
	if r.IsCubic() {
		t.Error("mixed levels reported cubic")
	}
	if r.Volume() != 32 {
		t.Errorf("Volume = %d", r.Volume())
	}
}

func TestQuickCoversTransitive(t *testing.T) {
	f := func(l1, l2, l3, p uint8) bool {
		a := NewInterval(int(l1%4), int(p%8))
		b := a.AncestorAt(a.Level + int(l2%4))
		c := b.AncestorAt(b.Level + int(l3%4))
		return c.Covers(a) && c.Covers(b) && b.Covers(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFromRangeRoundTrip(t *testing.T) {
	f := func(level, pos uint8) bool {
		iv := NewInterval(int(level%10), int(pos%100))
		got, ok := FromRange(iv.Start(), iv.Len())
		return ok && got == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{NewInterval(2, 1), NewInterval(1, 3)} // [4,7] x [6,7]
	if !r.Contains([]int{5, 6}) || !r.Contains([]int{4, 7}) {
		t.Error("points inside not contained")
	}
	if r.Contains([]int{3, 6}) || r.Contains([]int{5, 8}) || r.Contains([]int{5}) {
		t.Error("points outside contained")
	}
}

func TestIntervalIntersect(t *testing.T) {
	big := NewInterval(3, 0)   // [0,7]
	small := NewInterval(1, 2) // [4,5]
	got, ok := big.Intersect(small)
	if !ok || got != small {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	got, ok = small.Intersect(big)
	if !ok || got != small {
		t.Errorf("reverse Intersect = %v, %v", got, ok)
	}
	if _, ok := small.Intersect(NewInterval(1, 3)); ok {
		t.Error("disjoint intervals intersected")
	}
}
