// Package a exercises the errclass analyzer: error-handling decisions must
// branch on the typed storage taxonomy, never on message text.
package a

import (
	"errors"
	"fmt"
	"strings"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

func compared(err error) bool {
	if err.Error() == "storage: block corrupt" { // want `comparing err.Error\(\) with == matches on message text`
		return true
	}
	return err.Error() != "injected" // want `comparing err.Error\(\) with != matches on message text`
}

func matched(err error) bool {
	if strings.Contains(err.Error(), "corrupt") { // want `strings.Contains on err.Error\(\) matches on message text`
		return true
	}
	if strings.HasPrefix(err.Error(), "storage:") { // want `strings.HasPrefix on err.Error\(\) matches on message text`
		return true
	}
	if strings.HasSuffix(err.Error(), "checksum mismatch") { // want `strings.HasSuffix on err.Error\(\) matches on message text`
		return true
	}
	if strings.Index(err.Error(), "no space") >= 0 { // want `strings.Index on err.Error\(\) matches on message text`
		return true
	}
	return strings.EqualFold("ENOSPC", err.Error()) // want `strings.EqualFold on err.Error\(\) matches on message text`
}

func switched(err error) int {
	switch err.Error() { // want `switching on err.Error\(\) matches on message text`
	case "storage: block corrupt":
		return 1
	}
	return 0
}

func fine(err error) (bool, string) {
	// Branching on the taxonomy is the supported pattern.
	if storage.IsCorruption(err) || errors.Is(err, storage.ErrTransient) {
		return true, ""
	}
	// Formatting and logging an error's text is not matching on it.
	msg := fmt.Sprintf("operation failed: %s", err.Error())
	// Matching on non-error strings is out of scope.
	if strings.Contains(msg, "failed") {
		return false, msg
	}
	return false, err.Error()
}

func suppressed(err error) bool {
	//shiftsplitvet:ignore errclass -- test asserts exact message wording on purpose
	return err.Error() == "storage: block corrupt"
}
