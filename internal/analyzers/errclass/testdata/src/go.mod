module github.com/shiftsplit/shiftsplit/vettest

go 1.22

require github.com/shiftsplit/shiftsplit v0.0.0

replace github.com/shiftsplit/shiftsplit => ../../../../..
