package errclass_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/errclass"
)

func TestErrClass(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errclass.Analyzer, "a")
}
