// Package errclass rejects string-matching on error messages.
//
// PR 6 gave the storage stack a typed error taxonomy: corruption,
// transient, and space-exhausted failures are errors.Is-able classes
// (storage.ErrCorruption, storage.ErrTransient, storage.ErrNoSpace) with
// helpers (storage.IsCorruption, storage.IsTransient,
// storage.IsSpaceExhausted, storage.Classify). The retry loop, the
// scrubber, the breaker, and degraded serving all branch on those classes;
// a caller that instead matches on message text silently diverges the
// moment a message is reworded — the retry loop would re-drive corruption,
// or the scrubber would quarantine a timeout.
//
// Flagged: comparing the result of an error's Error() method with == or
// !=, and passing an error string to the strings matching helpers
// (strings.Contains, HasPrefix, HasSuffix, Index, EqualFold). Switching on
// err.Error() is the same mistake and is also flagged.
//
// Allowed: logging or formatting an error string (fmt.Errorf,
// Logf(err.Error()), ...) — only *matching* on the text is the hazard.
package errclass

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the errclass check.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "flag string-matching on error messages; branch with errors.Is and the storage error taxonomy",
	Run:  run,
}

// stringsMatchers are the strings-package helpers that turn an error
// message into a control-flow decision.
var stringsMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"Index":     true,
	"EqualFold": true,
}

const remedy = "branch with errors.Is against a storage taxonomy sentinel (storage.ErrCorruption, storage.ErrTransient, storage.ErrNoSpace) or its Is* helper instead"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if node.Op != token.EQL && node.Op != token.NEQ {
					return true
				}
				if isErrorString(pass.TypesInfo, node.X) || isErrorString(pass.TypesInfo, node.Y) {
					pass.Reportf(node.Pos(), "comparing err.Error() with %s matches on message text; %s", node.Op, remedy)
				}
			case *ast.SwitchStmt:
				if node.Tag != nil && isErrorString(pass.TypesInfo, node.Tag) {
					pass.Reportf(node.Pos(), "switching on err.Error() matches on message text; %s", remedy)
				}
			case *ast.CallExpr:
				checkStringsCall(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkStringsCall flags strings.<Matcher>(...) calls that receive an
// error's message as either operand.
func checkStringsCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringsMatchers[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorString(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(), "strings.%s on err.Error() matches on message text; %s", fn.Name(), remedy)
			return
		}
	}
}

// isErrorString reports whether expr is a call to the Error() method of a
// value implementing the error interface — i.e. the error's message text.
func isErrorString(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := vetutil.Callee(info, call)
	if fn == nil || fn.Name() != "Error" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return types.Implements(sig.Recv().Type(), errorInterface)
}

// errorInterface is the predeclared error interface, for Implements checks
// against concrete error types as well as the interface itself.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
