package maprangefloat_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/maprangefloat"
)

func TestMapRangeFloat(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maprangefloat.Analyzer, "a")
}
