// Package maprangefloat flags float accumulation driven by map iteration.
//
// Go randomizes map iteration order, and floating-point addition is not
// associative, so `for _, v := range m { sum += v }` can produce a
// different sum on every run. Everywhere else that is a flakiness
// nuisance; here it breaks the system's core contract. The paper's six
// analytical results assume exact coefficient identities — MergeBlock
// followed by ClearBlock must restore bit-identical coefficients, and the
// crash campaigns compare recovered transforms byte-for-byte. A single
// map-ordered accumulation in a SHIFT/SPLIT path makes transforms
// irreproducible across runs (cf. the shift-variance pitfalls of
// phase-shifted Haar constructions: tiny reordering-induced deltas do not
// stay tiny once thresholding decisions depend on them).
//
// The fix is mechanical and the analyzer's message says so: collect the
// keys, sort them, and iterate the slice — as Durable.Commit and the
// appender's expansion path already do.
package maprangefloat

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
)

// Analyzer is the maprangefloat check.
var Analyzer = &analysis.Analyzer{
	Name: "maprangefloat",
	Doc:  "flag order-dependent float accumulation inside range-over-map loops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, rng)
			return true
		})
	}
	return nil
}

// checkBody scans one range-over-map body (including nested function
// literals, which run per iteration) for float accumulation into state
// declared outside the loop.
func checkBody(pass *analysis.Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			report(pass, rng, as.Lhs[0])
		case token.ASSIGN:
			// x = x + v (and -, *) spelled out.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				return true
			}
			if types.ExprString(ast.Unparen(bin.X)) == types.ExprString(ast.Unparen(as.Lhs[0])) {
				report(pass, rng, as.Lhs[0])
			}
		}
		return true
	})
}

// report flags lhs if it is float-typed and rooted outside the loop.
func report(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr) {
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok || !isFloat(tv.Type) {
		return
	}
	obj := rootObject(pass.TypesInfo, lhs)
	if obj == nil {
		return
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return // loop-local accumulator: resets every iteration, order-safe
	}
	pass.Reportf(lhs.Pos(),
		"float accumulation into %s follows map iteration order, which is randomized; SHIFT/SPLIT sums must be deterministic — sort the keys and range over the slice",
		obj.Name())
}

func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// rootObject digs to the base identifier of an lvalue: sum -> sum,
// totals[i] -> totals, s.total -> s, *p -> p.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.IndexExpr:
		return rootObject(info, e.X)
	case *ast.SelectorExpr:
		return rootObject(info, e.X)
	case *ast.StarExpr:
		return rootObject(info, e.X)
	default:
		return nil
	}
}
