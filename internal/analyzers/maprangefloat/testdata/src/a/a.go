// Package a exercises the maprangefloat analyzer: float accumulation
// ordered by map iteration is nondeterministic and must be flagged.
package a

import "sort"

type acc struct {
	total float64
}

func bad(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum follows map iteration order`
	}
	return sum
}

func badSpelled(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want `float accumulation into total`
	}
	return total
}

func badField(m map[int]float64, a *acc) {
	for _, v := range m {
		a.total += v // want `float accumulation into a`
	}
}

func badIndexed(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k%2] += v // want `float accumulation into out`
	}
}

func badClosure(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		func() {
			sum += v // want `float accumulation into sum`
		}()
	}
	return sum
}

func goodLocal(m map[int]float64) float64 {
	var max float64
	for _, v := range m {
		scaled := v
		scaled *= 2 // loop-local accumulator resets every iteration: allowed
		if scaled > max {
			max = scaled
		}
	}
	return max
}

func goodSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k] // ranging over the sorted slice is the sanctioned pattern
	}
	return sum
}

func goodInt(m map[int]int) int {
	var n int
	for _, v := range m {
		n += v // integer addition is associative: order cannot matter
	}
	return n
}
