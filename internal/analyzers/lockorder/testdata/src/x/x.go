// Package x is the callee side of the cross-package ordering test: its
// exported helpers acquire x.Mu, and lockorder exports that as an
// "acquires" fact for callers in dependent packages.
package x

import "sync"

var Mu sync.Mutex

var n int

// LockedOp acquires Mu; callers holding their own lock create an
// ordering edge caller-lock -> x.Mu through the exported fact.
func LockedOp() {
	Mu.Lock()
	defer Mu.Unlock()
	n++
}
