// Package storage carries lockorder's seeded regression: a StopScrub-shaped
// lifecycle that waits on the worker's done channel while still holding the
// lifecycle mutex. The worker's shutdown path may need that same mutex, so
// the wait can never complete — the deadlock PR 6's scrub teardown had to
// dodge by hand.
package storage

import "sync"

type lifecycle struct {
	mu   sync.Mutex
	done chan struct{}
	stop func()
}

// stopBroken waits for the worker under the lock.
func (l *lifecycle) stopBroken() {
	l.mu.Lock()
	l.stop()
	<-l.done // want `channel receive while holding .*lifecycle\.mu`
	l.mu.Unlock()
}

// stopFixed snapshots the handles under the lock, then waits outside it.
func (l *lifecycle) stopFixed() {
	l.mu.Lock()
	stop, done := l.stop, l.done
	l.mu.Unlock()
	stop()
	<-done
}
