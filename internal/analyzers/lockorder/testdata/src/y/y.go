// Package y closes a lock-order cycle across a package boundary: the
// y.mu -> x.Mu edge comes from a call resolved through x's exported
// acquires fact, and the reverse x.Mu -> y.mu edge is direct.
package y

import (
	"sync"

	"github.com/shiftsplit/shiftsplit/vettest/x"
)

var mu sync.Mutex

var n int

// aThenB holds mu across a call that acquires x.Mu (fact-derived edge).
func aThenB() {
	mu.Lock()
	defer mu.Unlock()
	x.LockedOp()
}

// bThenA inverts the order directly.
func bThenA() {
	x.Mu.Lock()
	mu.Lock() // want `completes a lock-order cycle`
	n++
	mu.Unlock()
	x.Mu.Unlock()
}
