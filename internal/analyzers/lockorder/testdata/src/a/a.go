// Package a exercises the single-package lockorder rules: acquisition
// ordering, self-deadlock, leaked locks, and channel operations under a
// held mutex.
package a

import "sync"

type S struct {
	a  sync.Mutex
	b  sync.Mutex
	mu sync.Mutex
	c  chan int
	n  int
}

// ab establishes the canonical order a before b.
func (s *S) ab() {
	s.a.Lock()
	s.b.Lock()
	s.n++
	s.b.Unlock()
	s.a.Unlock()
}

// ba inverts it: acquiring a while b is held closes the cycle.
func (s *S) ba() {
	s.b.Lock()
	s.a.Lock() // want `completes a lock-order cycle`
	s.n++
	s.a.Unlock()
	s.b.Unlock()
}

// double re-locks a mutex that is provably held.
func (s *S) double() {
	s.mu.Lock()
	s.mu.Lock() // want `second Lock self-deadlocks`
	s.n++
	s.mu.Unlock()
}

// leak forgets the unlock on the early-return path.
func (s *S) leak(cond bool) bool {
	s.mu.Lock() // want `may still be held at return on some path`
	if cond {
		return false
	}
	s.mu.Unlock()
	return true
}

// sendUnderLock performs a channel send while the mutex is held.
func (s *S) sendUnderLock(v int) {
	s.mu.Lock()
	s.c <- v // want `channel send while holding .*S\.mu`
	s.mu.Unlock()
}

// clean is the idiomatic shape: defer covers every path.
func (s *S) clean() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// cleanClosure releases through a deferred closure.
func (s *S) cleanClosure() {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
}

// condSend only may-holds the lock at the send: the must-analysis keeps
// the conditional acquisition from reporting.
func (s *S) condSend(c bool) {
	if c {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.c <- 1
}

// rlocks shows read-side recursion is tolerated (no double-RLock report).
func (s *S) rlocked(mu *sync.RWMutex) {
	mu.RLock()
	defer mu.RUnlock()
	s.n++
}
