// Package lockorder checks the mutex discipline the concurrent subsystems
// (storage.Locked, the cache shards, ingest staging, the appender
// serialization lock) must all agree on, using the cfg dataflow engine:
//
//   - acquisition ordering: holding lock A while acquiring lock B puts the
//     edge A→B into a global (cross-package, via analyzer facts)
//     acquisition graph; an edge that completes a cycle is a potential
//     deadlock and is rejected. Calls are followed through their exported
//     "acquires" facts, so ingest holding appMu while the appender locks
//     the device lock contributes ingest.appMu → storage.Locked.mu.
//   - self-deadlock: re-locking a mutex that a must-analysis proves is
//     already held on every path to the Lock call.
//   - leaked locks: a mutex a may-analysis shows still held on some path
//     at function exit (and not released by a defer) is a missing Unlock
//     on an early return.
//   - blocking under a lock: a channel operation (send, receive, select)
//     executed while a mutex is provably held keeps every other contender
//     blocked for an unbounded wait — the shape of the classic "shutdown
//     waits on the worker that waits on the shutdown lock" deadlock.
//
// Lock identity is type-level ("pkg.Type.field"); self-deadlock reports
// additionally require the same receiver expression, so sharded locks
// (cache shards locked one after another) do not trip it. The must-held
// state is intersection over paths: a conditionally-taken lock never
// produces a report.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/cfg"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "mutex discipline: consistent acquisition order, no self-deadlock, no leaked locks, no channel ops under a lock",
	Run:  run,
}

// acquiresFact summarizes the lock classes a function may acquire,
// transitively through its callees. Exported under the function's FuncKey.
type acquiresFact struct {
	Classes []string
}

// lockGraph is the global acquisition-order graph, shared across packages
// through the fact store under graphKey.
type lockGraph struct {
	// edges[a][b] holds the position that first established "b acquired
	// while a held".
	edges map[string]map[string]string
}

const graphKey = "#acquisition-graph"

func (g *lockGraph) has(a, b string) bool {
	return g.edges[a] != nil && g.edges[a][b] != ""
}

func (g *lockGraph) add(a, b, at string) {
	if g.edges == nil {
		g.edges = make(map[string]map[string]string)
	}
	if g.edges[a] == nil {
		g.edges[a] = make(map[string]string)
	}
	g.edges[a][b] = at
}

// pathFrom returns a lock-class path a→...→b in the graph, or nil.
func (g *lockGraph) pathFrom(a, b string) []string {
	seen := map[string]bool{a: true}
	var dfs func(cur string, path []string) []string
	dfs = func(cur string, path []string) []string {
		if cur == b {
			return path
		}
		nexts := make([]string, 0, len(g.edges[cur]))
		for n := range g.edges[cur] {
			nexts = append(nexts, n)
		}
		sort.Strings(nexts)
		for _, n := range nexts {
			if seen[n] {
				continue
			}
			seen[n] = true
			if p := dfs(n, append(path, n)); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(a, []string{a})
}

// lockOp classifies one mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// mutexCall recognizes calls to sync.Mutex/RWMutex Lock/Unlock/RLock/
// RUnlock (including promoted methods of embedded mutexes) and returns the
// operation, the type-level lock class, and the receiver expression text
// (the instance, for self-deadlock precision).
func mutexCall(info *types.Info, call *ast.CallExpr) (op lockOp, class, instance string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, "", ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, "", ""
	}
	switch fn.Name() {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return opNone, "", ""
	}
	class = lockClass(info, sel.X)
	if class == "" {
		return opNone, "", ""
	}
	return op, class, types.ExprString(sel.X)
}

// lockClass names the mutex a receiver expression denotes, type-level:
// "pkg.Owner.field" for struct fields, "pkg.var" for variables, and
// "pkg.Owner.<embedded>" for promoted methods.
func lockClass(info *types.Info, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if key, ok := vetutil.FieldKey(info, sel); ok {
			return key
		}
		if obj, ok := info.Uses[sel.Sel]; ok && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	}
	if id, ok := recv.(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return ""
		}
		// A bare receiver with a promoted Lock method: class by type.
		if t := obj.Type(); t != nil {
			tt := t
			if ptr, ok := tt.(*types.Pointer); ok {
				tt = ptr.Elem()
			}
			if named, ok := tt.(*types.Named); ok && named.Obj().Pkg() != nil {
				if named.Obj().Pkg().Path() == "sync" {
					// A plain sync.Mutex variable: identify by the object.
					if obj.Pkg() != nil {
						return obj.Pkg().Path() + "." + obj.Name()
					}
					return ""
				}
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".<embedded>"
			}
		}
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// funcInfo is one function (or function literal) under analysis.
type funcInfo struct {
	name string // diagnostic label
	key  string // fact key ("" for literals)
	body *ast.BlockStmt
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	var fns []funcInfo
	calls := make(map[string][]string) // fact key -> same-package callee fact keys
	direct := make(map[string][]string)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			key := vetutil.FuncKey(fn)
			fns = append(fns, funcInfo{name: fd.Name.Name, key: key, body: fd.Body})
			// Function literals are their own schedulable units: collect
			// them for independent CFG analysis.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fns = append(fns, funcInfo{name: fd.Name.Name + ".func", body: lit.Body})
				}
				return true
			})
			if key == "" {
				continue
			}
			direct[key] = directAcquires(info, fd.Body)
			calls[key] = sameePackageCallees(pass, fd.Body)
		}
	}

	acquires := closeAcquires(pass, direct, calls)
	for key, classes := range acquires {
		if len(classes) > 0 {
			pass.ExportFact(key, acquiresFact{Classes: classes})
		}
	}

	graph := sharedGraph(pass)
	for _, fn := range fns {
		checkFunc(pass, fn, acquires, graph)
	}
	return nil
}

// sharedGraph fetches (or creates) the cross-package acquisition graph.
func sharedGraph(pass *analysis.Pass) *lockGraph {
	if v, ok := pass.ImportFact(graphKey); ok {
		return v.(*lockGraph)
	}
	g := &lockGraph{}
	pass.ExportFact(graphKey, g)
	return g
}

// directAcquires lists the lock classes a body Lock/RLocks outside
// function literals.
func directAcquires(info *types.Info, body *ast.BlockStmt) []string {
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, class, _ := mutexCall(info, call); op == opLock || op == opRLock {
				seen[class] = true
			}
		}
		return true
	})
	return sortedKeys(seen)
}

// sameePackageCallees lists the fact keys of same-package functions the
// body calls outside function literals.
func sameePackageCallees(pass *analysis.Pass, body *ast.BlockStmt) []string {
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := vetutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() != pass.Pkg {
			return true
		}
		seen[vetutil.FuncKey(fn)] = true
		return true
	})
	return sortedKeys(seen)
}

// closeAcquires computes each function's transitive acquire set: its own
// locks, same-package callees to a fixed point, and imported facts for
// dependency callees (already transitive).
func closeAcquires(pass *analysis.Pass, direct, calls map[string][]string) map[string][]string {
	cur := make(map[string]map[string]bool, len(direct))
	for key, classes := range direct {
		cur[key] = make(map[string]bool)
		for _, c := range classes {
			cur[key][c] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for key, callees := range calls {
			for _, callee := range callees {
				var add []string
				if set, ok := cur[callee]; ok {
					add = sortedKeys(set)
				} else if v, ok := pass.ImportFact(callee); ok {
					add = v.(acquiresFact).Classes
				}
				for _, c := range add {
					if !cur[key][c] {
						cur[key][c] = true
						changed = true
					}
				}
			}
		}
	}
	out := make(map[string][]string, len(cur))
	for key, set := range cur {
		out[key] = sortedKeys(set)
	}
	return out
}

// calleeAcquires resolves what a call may acquire: same-package functions
// from the in-progress closure, imports from facts.
func calleeAcquires(pass *analysis.Pass, acquires map[string][]string, call *ast.CallExpr) []string {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	key := vetutil.FuncKey(fn)
	if fn.Pkg() == pass.Pkg {
		return acquires[key]
	}
	if v, ok := pass.ImportFact(key); ok {
		return v.(acquiresFact).Classes
	}
	return nil
}

// checkFunc runs the CFG analyses over one function body.
func checkFunc(pass *analysis.Pass, fn funcInfo, acquires map[string][]string, graph *lockGraph) {
	info := pass.TypesInfo
	g := cfg.New(fn.body)

	transfer := func(n ast.Node, s cfg.Set) cfg.Set {
		out := s
		cfg.ScanNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch op, class, _ := mutexCall(info, call); op {
			case opLock, opRLock:
				out = out.With(class)
			case opUnlock, opRUnlock:
				out = out.Without(class)
			}
			return true
		})
		return out
	}

	must := cfg.Forward[cfg.Set](g, cfg.MustSets{}, transfer)
	may := cfg.Forward[cfg.Set](g, cfg.MaySets{}, transfer)

	// Deterministic report sweep: walk reachable blocks in index order,
	// replaying the must-held state through each node's events.
	lockPos := make(map[string]token.Pos) // class -> first Lock site
	deferred := make(map[string]bool)     // classes released by defers
	reported := make(map[token.Pos]bool)

	for _, b := range g.Blocks {
		if !g.Reachable(b) {
			continue
		}
		held := must.In[b]
		mustInstances := make(map[string]bool)
		// Rebuild the instance view for this block from scratch is not
		// path-sensitive; instead track instances only within a block run,
		// seeded from the class view (conservative: an instance report
		// additionally requires the class to be must-held).
		for _, n := range b.Nodes {
			cfg.ScanNode(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.DeferStmt:
					for _, class := range deferredReleases(info, m) {
						deferred[class] = true
					}
					return true
				case *ast.SendStmt:
					reportBlocked(pass, fn, m.Pos(), "channel send", held, reported)
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						reportBlocked(pass, fn, m.Pos(), "channel receive", held, reported)
					}
				case *ast.SelectStmt:
					if selectBlocks(m) {
						reportBlocked(pass, fn, m.Pos(), "select", held, reported)
					}
				case *ast.CallExpr:
					op, class, inst := mutexCall(info, m)
					switch op {
					case opLock, opRLock:
						if op == opLock && held.Has(class) && mustInstances[inst] && !reported[m.Pos()] {
							reported[m.Pos()] = true
							pass.Reportf(m.Pos(), "%s: %s is already held here; second Lock self-deadlocks", fn.name, class)
						}
						for _, h := range held.Sorted() {
							if h != class {
								addEdge(pass, graph, h, class, m.Pos(), reported)
							}
						}
						held = held.With(class)
						mustInstances[inst] = true
						if _, ok := lockPos[class]; !ok {
							lockPos[class] = m.Pos()
						}
					case opUnlock, opRUnlock:
						held = held.Without(class)
						delete(mustInstances, inst)
					case opNone:
						for _, acq := range calleeAcquires(pass, acquires, m) {
							for _, h := range held.Sorted() {
								if h != acq {
									addEdge(pass, graph, h, acq, m.Pos(), reported)
								}
							}
						}
					}
				}
				return true
			})
		}
	}

	// Leaked locks: may-held at exit, not covered by a deferred release.
	for _, class := range may.In[g.Exit].Sorted() {
		if deferred[class] {
			continue
		}
		pos := lockPos[class]
		if pos == token.NoPos || reported[pos] {
			continue
		}
		reported[pos] = true
		pass.Reportf(pos, "%s: %s may still be held at return on some path (missing Unlock on an early exit?)", fn.name, class)
	}
}

// deferredReleases lists lock classes a defer statement releases, either
// directly (defer mu.Unlock()) or through a literal body.
func deferredReleases(info *types.Info, d *ast.DeferStmt) []string {
	var out []string
	if op, class, _ := mutexCall(info, d.Call); op == opUnlock || op == opRUnlock {
		out = append(out, class)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, class, _ := mutexCall(info, call); op == opUnlock || op == opRUnlock {
					out = append(out, class)
				}
			}
			return true
		})
	}
	return out
}

// selectBlocks reports whether a select statement can block (no default).
func selectBlocks(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cc.(*ast.CommClause).Comm == nil {
			return false
		}
	}
	return len(s.Body.List) > 0
}

func reportBlocked(pass *analysis.Pass, fn funcInfo, pos token.Pos, what string, held cfg.Set, reported map[token.Pos]bool) {
	if held.Empty() || held.Universal || reported[pos] {
		return
	}
	reported[pos] = true
	pass.Reportf(pos, "%s: %s while holding %s blocks every contender for an unbounded wait; release the lock first",
		fn.name, what, joinClasses(held.Sorted()))
}

// addEdge records a→b in the acquisition graph and reports if it completes
// a cycle.
func addEdge(pass *analysis.Pass, graph *lockGraph, a, b string, pos token.Pos, reported map[token.Pos]bool) {
	at := pass.Fset.Position(pos).String()
	if path := graph.pathFrom(b, a); path != nil {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, "acquiring %s while holding %s completes a lock-order cycle: %s (first reverse edge at %s)",
				b, a, joinClasses(append(path, b)), graph.edges[path[0]][path[1]])
		}
		return
	}
	if !graph.has(a, b) {
		graph.add(a, b, at)
	}
}

func joinClasses(classes []string) string {
	out := ""
	for i, c := range classes {
		if i > 0 {
			out += " -> "
		}
		out += c
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
