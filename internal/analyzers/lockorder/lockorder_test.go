package lockorder_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "a")
}

// TestLockOrderCrossPackage drives the facts path: x is checked first and
// exports its acquire set; y's call into x contributes the y.mu -> x.Mu
// edge that the direct reverse acquisition then contradicts.
func TestLockOrderCrossPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "x", "y")
}

// TestLockOrderScrubRegression is the seeded regression: holding the
// lifecycle mutex across the worker's done-channel wait (the StopScrub
// teardown deadlock shape).
func TestLockOrderScrubRegression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "internal/storage")
}
