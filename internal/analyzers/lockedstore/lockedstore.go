// Package lockedstore guards the boundary between the stateful durable
// storage layer and the concurrent serving layer.
//
// storage.Durable, storage.Checksummed, the journal, and the fault
// injectors keep per-instance scratch (frame buffers, staging maps,
// epochs) and are documented as single-goroutine types; the serving stack
// (internal/cache's sharded LRU, internal/server's handlers) fans requests
// out across goroutines. PR 2 bridged the two with storage.Locked, and
// serving.go is careful to interpose it whenever a durable store sits
// under the serve cache. This analyzer keeps that arrangement honest:
//
//   - anywhere in the module, handing a known non-thread-safe store
//     directly to cache.New is flagged — concurrent cache misses would
//     interleave inside the durable layer's shared frame scratch;
//   - inside the concurrent packages (internal/server, internal/cache),
//     calling device methods directly on a non-thread-safe store value is
//     flagged for the same reason.
//
// The fix is always the same wrapper: storage.NewLocked(store).
package lockedstore

import (
	"go/ast"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the lockedstore check.
var Analyzer = &analysis.Analyzer{
	Name: "lockedstore",
	Doc:  "flag non-thread-safe durable store types used on the concurrent serving path without storage.Locked",
	Run:  run,
}

// unsafeStores are the internal/storage types documented as not safe for
// concurrent use (stateful scratch or staging under the hood). MemStore,
// FileStore, Counting, BufferPool, Retry, and Locked itself are absent: they
// synchronize internally or hold no shared state.
var unsafeStores = map[string]bool{
	"Durable":     true,
	"Checksummed": true,
	"Journal":     true,
	"CrashStore":  true,
	"Faulty":      true,
}

// deviceMethods are the BlockStore(-ish) calls whose interleaving corrupts
// a stateful store.
var deviceMethods = map[string]bool{
	"ReadBlock":  true,
	"WriteBlock": true,
	"Commit":     true,
	"Truncate":   true,
	"Sync":       true,
}

// concurrentPkgs is where multi-goroutine access is the norm.
var concurrentPkgs = []string{
	"internal/server",
	"internal/cache",
}

func run(pass *analysis.Pass) error {
	inConcurrent := vetutil.HasAnyPathSuffix(pass.Pkg.Path(), concurrentPkgs...)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCacheNew(pass, call)
			if inConcurrent {
				checkDeviceCall(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkCacheNew flags cache.New(store, ...) when store's static type is a
// known non-thread-safe storage type.
func checkCacheNew(pass *analysis.Pass, call *ast.CallExpr) {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "New" || !vetutil.HasPathSuffix(vetutil.DeclPkgPath(fn), "internal/cache") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	if name, ok := vetutil.NamedIn(tv.Type, "internal/storage"); ok && unsafeStores[name] {
		pass.Reportf(call.Args[0].Pos(),
			"storage.%s is not safe for the cache's concurrent misses; wrap it: cache.New(storage.NewLocked(...), ...)", name)
	}
}

// checkDeviceCall flags direct device-method calls on a non-thread-safe
// store inside a concurrent package.
func checkDeviceCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !deviceMethods[sel.Sel.Name] {
		return
	}
	recv := vetutil.ReceiverType(pass.TypesInfo, call)
	if name, ok := vetutil.NamedIn(recv, "internal/storage"); ok && unsafeStores[name] {
		pass.Reportf(call.Pos(),
			"%s on storage.%s from a concurrent package; this type shares scratch across calls — access it through storage.NewLocked", sel.Sel.Name, name)
	}
}
