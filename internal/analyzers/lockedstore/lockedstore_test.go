package lockedstore_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/lockedstore"
)

func TestLockedStore(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockedstore.Analyzer, "a", "internal/server")
}
