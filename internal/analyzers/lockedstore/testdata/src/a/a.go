// Package a exercises the lockedstore analyzer's cache.New check, which
// applies module-wide: a non-thread-safe store may never feed the sharded
// cache directly.
package a

import (
	"github.com/shiftsplit/shiftsplit/internal/cache"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

func unsafeCache(d *storage.Durable) (*cache.Sharded, error) {
	return cache.New(d, 64, 4) // want `storage.Durable is not safe for the cache`
}

func lockedCache(d *storage.Durable) (*cache.Sharded, error) {
	return cache.New(storage.NewLocked(d), 64, 4) // the sanctioned wrapper
}

func memCache(m *storage.MemStore) (*cache.Sharded, error) {
	return cache.New(m, 64, 4) // MemStore synchronizes internally: allowed
}

func directHere(d *storage.Durable, buf []float64) error {
	return d.ReadBlock(0, buf) // single-goroutine package: device calls allowed
}
