// Package server stands in for the concurrent serving layer: its import
// path ends in internal/server, so device calls on non-thread-safe stores
// are flagged here.
package server

import "github.com/shiftsplit/shiftsplit/internal/storage"

func handle(d *storage.Durable, l *storage.Locked, buf []float64) error {
	if err := d.ReadBlock(0, buf); err != nil { // want `ReadBlock on storage.Durable from a concurrent package`
		return err
	}
	if err := d.Commit(); err != nil { // want `Commit on storage.Durable`
		return err
	}
	return l.ReadBlock(0, buf) // Locked synchronizes internally: allowed
}
