// Package vetutil holds the small amount of type-plumbing shared by the
// shiftsplitvet analyzers: resolving callees to their declaring package,
// segment-aware package-path matching, and recognizing the storage types
// the invariants are about.
package vetutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// RootPkgPath is the import path of the shiftsplit module's root package,
// whose Store methods wrap the storage stack and participate in the
// error-handling invariants.
const RootPkgPath = "github.com/shiftsplit/shiftsplit"

// HasPathSuffix reports whether pkgPath ends in suffix on a path-segment
// boundary ("a/internal/storage" matches "internal/storage";
// "a/notinternal/storage" does not match "internal/storage").
func HasPathSuffix(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+suffix)
}

// HasAnyPathSuffix reports whether pkgPath ends in any of the suffixes.
func HasAnyPathSuffix(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if HasPathSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// Callee resolves the function or method a call expression invokes, or nil
// for calls through function values, built-ins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// DeclPkgPath returns the import path of the package that declares fn
// ("" for builtins and error.Error, which have no package).
func DeclPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// ResultError reports whether the call's type is error or a tuple whose
// last element is error.
func ResultError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return isErrorType(t.At(t.Len() - 1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

// NamedIn strips pointers from t and, when the result is a named type
// declared in a package whose path ends in pkgSuffix, returns its name.
func NamedIn(t types.Type, pkgSuffix string) (string, bool) {
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !HasPathSuffix(obj.Pkg().Path(), pkgSuffix) {
		return "", false
	}
	return obj.Name(), true
}

// ReceiverType returns the static type of the receiver expression of a
// method call selector, or nil when the call is not a method selector.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}
