// Package vetutil holds the small amount of type-plumbing shared by the
// shiftsplitvet analyzers: resolving callees to their declaring package,
// segment-aware package-path matching, and recognizing the storage types
// the invariants are about.
package vetutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RootPkgPath is the import path of the shiftsplit module's root package,
// whose Store methods wrap the storage stack and participate in the
// error-handling invariants.
const RootPkgPath = "github.com/shiftsplit/shiftsplit"

// HasPathSuffix reports whether pkgPath ends in suffix on a path-segment
// boundary ("a/internal/storage" matches "internal/storage";
// "a/notinternal/storage" does not match "internal/storage").
func HasPathSuffix(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+suffix)
}

// HasAnyPathSuffix reports whether pkgPath ends in any of the suffixes.
func HasAnyPathSuffix(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if HasPathSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// Callee resolves the function or method a call expression invokes, or nil
// for calls through function values, built-ins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// DeclPkgPath returns the import path of the package that declares fn
// ("" for builtins and error.Error, which have no package).
func DeclPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// ResultError reports whether the call's type is error or a tuple whose
// last element is error.
func ResultError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return isErrorType(t.At(t.Len() - 1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

// NamedIn strips pointers from t and, when the result is a named type
// declared in a package whose path ends in pkgSuffix, returns its name.
func NamedIn(t types.Type, pkgSuffix string) (string, bool) {
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !HasPathSuffix(obj.Pkg().Path(), pkgSuffix) {
		return "", false
	}
	return obj.Name(), true
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// stopishFragments are the name fragments that mark a channel as a
// lifecycle/cancellation signal by convention (stopc, done, quit, ...).
var stopishFragments = []string{"stop", "done", "quit", "exit", "close", "closing", "shutdown", "halt", "cancel", "kill"}

// StopishName reports whether name reads as a stop/cancellation channel.
func StopishName(name string) bool {
	lower := strings.ToLower(name)
	for _, f := range stopishFragments {
		if strings.Contains(lower, f) {
			return true
		}
	}
	return false
}

// CancellationExpr reports whether e (the operand of a receive, or a
// select case channel) is a cancellation signal: a ctx.Done() call on a
// context.Context, or a channel whose terminal name is stopish.
func CancellationExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return false
		}
		tv, ok := info.Types[sel.X]
		return ok && IsContextType(tv.Type)
	}
	switch e := e.(type) {
	case *ast.Ident:
		return StopishName(e.Name)
	case *ast.SelectorExpr:
		return StopishName(e.Sel.Name)
	}
	return false
}

// CancellationRecv reports whether expr is a receive (`<-c`) from a
// cancellation signal.
func CancellationRecv(info *types.Info, expr ast.Expr) bool {
	u, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	return CancellationExpr(info, u.X)
}

// FuncKey returns a stable, position-independent fact key for fn:
// "pkgpath.Func" for package functions, "pkgpath.Recv.Method" for methods.
// It is identical whether fn came from source or from export data.
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	var b strings.Builder
	if fn.Pkg() != nil {
		b.WriteString(fn.Pkg().Path())
		b.WriteByte('.')
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			b.WriteString(named.Obj().Name())
			b.WriteByte('.')
		}
	}
	b.WriteString(fn.Name())
	return b.String()
}

// FieldKey returns the stable fact key of a field selection x.f:
// "pkgpath.Owner.field". ok is false when the selector does not resolve to
// a named struct's field.
func FieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil {
		return "", false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return obj.Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name(), true
}

// ReceiverType returns the static type of the receiver expression of a
// method call selector, or nil when the call is not a method selector.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}
