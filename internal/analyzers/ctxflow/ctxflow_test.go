package ctxflow_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "internal/ingest")
}

// TestCtxFlowScrubRegression is the seeded regression: the scrub
// lifecycle's context.WithCancel(context.Background()) (robust.go pre-PR 8)
// must be caught in a watched storage path.
func TestCtxFlowScrubRegression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "internal/storage")
}
