// Package ingest exercises the ctxflow rules inside a watched package
// path (the fixture module rewrites it under .../vettest/internal/ingest,
// which suffix-matches the real watched set).
package ingest

import (
	"context"
	"time"
)

type loopState struct {
	kickc chan struct{}
	stopc chan struct{}
	jobs  chan int
	out   chan int
}

// background mints a detached context in a library path.
func background() context.Context {
	return context.Background() // want `context.Background\(\) in a serving/maintenance path`
}

// todo is just as detached.
func todo() context.Context {
	return context.TODO() // want `context.TODO\(\) in a serving/maintenance path`
}

// derived threads the caller's context: clean.
func derived(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithoutCancel(ctx), time.Second)
}

// uncancellableLoop blocks on channels with no way out.
func (s *loopState) uncancellableLoop() {
	for { // want `blocking loop has no cancellation path`
		select {
		case <-s.kickc:
		case j := <-s.jobs:
			s.out <- j
		}
	}
}

// stopChannelLoop selects on a conventional stop channel: clean.
func (s *loopState) stopChannelLoop() {
	for {
		select {
		case <-s.kickc:
		case <-s.stopc:
			return
		}
	}
}

// ctxLoop selects on ctx.Done(): clean.
func (s *loopState) ctxLoop(ctx context.Context) {
	for {
		select {
		case j := <-s.jobs:
			s.out <- j
		case <-ctx.Done():
			return
		}
	}
}

// sendLoop blocks on a bare send forever.
func (s *loopState) sendLoop() {
	for { // want `blocking loop has no cancellation path`
		s.out <- 1
	}
}

// computeLoop has no channel operations: not a blocking loop, exempt.
func computeLoop() int {
	n := 0
	for {
		n++
		if n > 1<<20 {
			return n
		}
	}
}

// rangeWorker drains a close-managed feed: the close IS the cancellation.
func (s *loopState) rangeWorker() {
	for {
		for j := range s.jobs {
			s.out <- j
		}
		return
	}
}

// defaultOnlySelect never blocks (default case): exempt.
func (s *loopState) defaultOnlySelect() {
	n := 0
	for {
		select {
		case <-s.kickc:
		default:
			n++
		}
		if n > 10 {
			return
		}
	}
}
