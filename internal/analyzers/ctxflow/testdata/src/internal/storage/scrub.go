// Package storage carries ctxflow's seeded regression: the scrub
// lifecycle shipped with a context.WithCancel(context.Background()) inside
// StartScrub (robust.go, PR 6), which detached the background scrubber
// from the process context — shutdown had to know to call StopScrub, and a
// caller canceling its own context left the scrub goroutine running. The
// repaired API threads the caller's context instead.
package storage

import "context"

type scrubber struct {
	stop context.CancelFunc
	done chan struct{}
}

func (s *scrubber) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		}
	}
}

// startScrubBroken is the pre-repair shape.
func (s *scrubber) startScrubBroken() {
	ctx, cancel := context.WithCancel(context.Background()) // want `context.Background\(\) in a serving/maintenance path`
	done := make(chan struct{})
	s.stop, s.done = cancel, done
	go func() {
		defer close(done)
		s.run(ctx)
	}()
}

// startScrub is the repaired shape: the scrub lifetime nests inside the
// caller's.
func (s *scrubber) startScrub(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	done := make(chan struct{})
	s.stop, s.done = cancel, done
	go func() {
		defer close(done)
		s.run(ctx)
	}()
}
