// Package ctxflow enforces the cancellation discipline of the long-lived
// serving, ingest, and scrub paths.
//
// Three subsystems now run goroutines for the life of the process — the
// scrub loop, the ingest commit loop, and the HTTP serving tier — and the
// parallel maintenance engine multiplies them per operation. A loop that
// blocks without a cancellation path is a goroutine the process cannot
// shut down (PR 6's scrub lifecycle originally hung exactly this way), and
// a context.Context minted from context.Background() deep inside a library
// detaches that lifetime from the caller that must control it.
//
// Two rules, applied only to the watched packages (the root store API,
// internal/server, internal/ingest, internal/storage) and never to main
// packages (the process root legitimately creates the root context):
//
//  1. context.Background() and context.TODO() are banned. Thread the
//     caller's Context; a lifetime that must outlive a canceled request
//     derives from it with context.WithoutCancel.
//  2. An unconditional `for` loop that performs blocking channel
//     operations must have a cancellation path: a receive from ctx.Done()
//     or from a stop/done/quit channel (by conventional name), directly or
//     as a select case.
//
// Loops with no channel operations (compute loops) and bounded loops are
// not "blocking loops" and are exempt from rule 2.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "serving/ingest/scrub paths must thread a Context: no context.Background(), and blocking loops must select on a cancellation signal",
	Run:  run,
}

// watchedPkgs are the long-lived subsystems the rules apply to.
var watchedPkgs = []string{
	"internal/server",
	"internal/ingest",
	"internal/storage",
}

func watched(pkgPath string) bool {
	return pkgPath == vetutil.RootPkgPath || vetutil.HasAnyPathSuffix(pkgPath, watchedPkgs...)
}

func run(pass *analysis.Pass) error {
	if !watched(pass.Pkg.Path()) || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBackground(pass, n)
			case *ast.ForStmt:
				if n.Cond == nil {
					checkBlockingLoop(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkBackground flags context.Background() and context.TODO().
func checkBackground(pass *analysis.Pass, call *ast.CallExpr) {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil || vetutil.DeclPkgPath(fn) != "context" {
		return
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s() in a serving/maintenance path detaches this lifetime from its caller; thread the caller's Context (use context.WithoutCancel to outlive a canceled request)",
		fn.Name())
}

// checkBlockingLoop flags unconditional loops that block on channels with
// no cancellation path.
func checkBlockingLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	blocking := false
	cancellable := false
	// Receives appearing as select comm clauses are accounted for by the
	// SelectStmt case (a select with a default does not block); remember
	// them so the direct-receive case below does not recount them.
	commRecv := make(map[ast.Node]bool)
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			switch s := cc.(*ast.CommClause).Comm.(type) {
			case *ast.ExprStmt:
				commRecv[ast.Unparen(s.X)] = true
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 {
					commRecv[ast.Unparen(s.Rhs[0])] = true
				}
			}
		}
		return true
	})
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure runs on its own schedule; its ops are not this
			// loop's, and its body is checked when the walk reaches it.
			return false
		case *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !commRecv[n] {
				blocking = true
				if vetutil.CancellationExpr(pass.TypesInfo, n.X) {
					cancellable = true
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cc := range n.Body.List {
				if cc.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			for _, cc := range n.Body.List {
				clause := cc.(*ast.CommClause)
				if clause.Comm == nil {
					continue
				}
				// A select with a default never blocks, but a
				// cancellation case in it still counts as a way out.
				if !hasDefault {
					blocking = true
				}
				if recvFrom(pass, clause.Comm) {
					cancellable = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					blocking = true
					// Ranging over a channel terminates when the channel
					// closes; a close-managed worker feed is a
					// cancellation path of its own.
					cancellable = true
				}
			}
		}
		return true
	})
	if blocking && !cancellable {
		pass.Reportf(loop.Pos(),
			"blocking loop has no cancellation path; select on ctx.Done() or a stop channel so shutdown can reach it")
	}
}

// recvFrom reports whether a select comm clause receives from a
// cancellation signal.
func recvFrom(pass *analysis.Pass, comm ast.Stmt) bool {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		return vetutil.CancellationRecv(pass.TypesInfo, s.X)
	case *ast.AssignStmt:
		return len(s.Rhs) == 1 && vetutil.CancellationRecv(pass.TypesInfo, s.Rhs[0])
	}
	return false
}
