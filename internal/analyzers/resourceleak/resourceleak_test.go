package resourceleak_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/resourceleak"
)

func TestResourceLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), resourceleak.Analyzer, "a")
}

// TestResourceLeakIngestRegression is the seeded regression: the ingest
// commit loop's ticker leaking across shutdown, and an unjoinable
// fire-and-forget goroutine in a long-lived package.
func TestResourceLeakIngestRegression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), resourceleak.Analyzer, "internal/ingest")
}
