// Package resourceleak proves resource lifecycles closed on every path:
//
//   - a time.NewTicker must reach t.Stop() on every path to return (a
//     ticker pins its runtime timer until stopped; the ingest commit loop
//     shipped one release late);
//   - a time.NewTimer must reach Stop() or a <-t.C drain;
//   - an os.Open/Create file, and any module "Open*" handle whose type has
//     a Close method (the store itself), must reach Close();
//   - in the long-lived packages, a spawned goroutine must be joinable:
//     its closure signals termination through a WaitGroup.Done, a
//     done-channel close or send, or a cancellation receive — otherwise
//     shutdown cannot wait for it.
//
// The path proof is a DFS over the function's CFG from the creation site:
// a path is satisfied when it hits a release, and leaky when it reaches
// Exit without one. A path through the error-true arm of the creation's
// own `err != nil` guard carries no resource (the creation failed), so
// `if err != nil { return err }` right after Open is not a leak. A defer
// that releases the resource satisfies every path at once. Resources that
// escape the function — returned, stored, passed, captured — transfer
// ownership and are not this function's to close.
package resourceleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/cfg"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the resourceleak check.
var Analyzer = &analysis.Analyzer{
	Name: "resourceleak",
	Doc:  "tickers, timers, files, and opened stores must reach Stop/Close on every path; goroutines in long-lived packages must be joinable",
	Run:  run,
}

// goroutinePkgs are where the unjoinable-goroutine rule applies: the
// subsystems whose goroutines outlive requests and must be shut down.
var goroutinePkgs = []string{
	"internal/server",
	"internal/ingest",
	"internal/storage",
	"internal/parallel",
}

// resource is one tracked creation.
type resource struct {
	obj      types.Object // the variable bound to the handle
	errObj   types.Object // the err bound by the same assignment (nil if none)
	pos      token.Pos
	what     string   // diagnostic noun, e.g. "time.Ticker"
	releases []string // method names that release it
	drainC   bool     // a receive from .C also releases (timers)
	create   ast.Node // the creating statement (skipped in scans)
}

func run(pass *analysis.Pass) error {
	checkGoroutines := pass.Pkg.Name() != "main" &&
		(pass.Pkg.Path() == vetutil.RootPkgPath || vetutil.HasAnyPathSuffix(pass.Pkg.Path(), goroutinePkgs...))

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			case *ast.GoStmt:
				if checkGoroutines {
					checkGoroutine(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkBody runs the path proof for every resource created directly in
// body (function literals are their own bodies and checked separately).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	resources := findCreations(pass, body)
	if len(resources) == 0 {
		return
	}
	g := cfg.New(body)
	for _, r := range resources {
		if deferReleases(pass, body, r) || escapes(pass, body, r) {
			continue
		}
		if leaks(pass, g, r) {
			verb := "Stop"
			if r.releases[0] == "Close" {
				verb = "Close"
			}
			pass.Reportf(r.pos, "%s may reach a return without %s on some path; release it on every path (a defer covers all of them)",
				r.what, verb)
		}
	}
}

// findCreations collects tracked creations assigned to fresh local
// variables, outside nested function literals.
func findCreations(pass *analysis.Pass, body *ast.BlockStmt) []*resource {
	var out []*resource
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		r := classifyCreation(pass, call)
		if r == nil {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		r.obj = pass.TypesInfo.ObjectOf(id)
		if r.obj == nil {
			return true
		}
		if len(as.Lhs) > 1 {
			if errID, ok := as.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
				r.errObj = pass.TypesInfo.ObjectOf(errID)
			}
		}
		r.pos = call.Pos()
		r.create = as
		out = append(out, r)
		return true
	})
	return out
}

// classifyCreation recognizes the creating calls this analyzer tracks.
func classifyCreation(pass *analysis.Pass, call *ast.CallExpr) *resource {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	switch vetutil.DeclPkgPath(fn) {
	case "time":
		switch fn.Name() {
		case "NewTicker":
			return &resource{what: "time.Ticker", releases: []string{"Stop"}}
		case "NewTimer":
			return &resource{what: "time.Timer", releases: []string{"Stop"}, drainC: true}
		}
		return nil
	case "os":
		switch fn.Name() {
		case "Open", "Create", "OpenFile":
			return &resource{what: "os.File", releases: []string{"Close"}}
		}
		return nil
	}
	// Module-internal handle constructors: Open* returning a type with a
	// Close method (the store API's own shape).
	if !strings.HasPrefix(fn.Name(), "Open") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	t := sig.Results().At(0).Type()
	if !hasMethod(t, "Close") {
		return nil
	}
	name := fn.Name()
	if named, ok := derefNamed(t); ok {
		name = named.Obj().Name()
	}
	return &resource{what: name + " handle", releases: []string{"Close"}}
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

func hasMethod(t types.Type, name string) bool {
	named, ok := derefNamed(t)
	if !ok {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// deferReleases reports whether any defer in body releases r, directly or
// through a deferred closure.
func deferReleases(pass *analysis.Pass, body *ast.BlockStmt, r *resource) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if releasesResource(pass, d.Call, r) {
			found = true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && releasesResource(pass, call, r) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// releasesResource reports whether call is r.Stop()/r.Close() on the
// tracked variable.
func releasesResource(pass *analysis.Pass, call *ast.CallExpr, r *resource) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(id) != r.obj {
		return false
	}
	for _, m := range r.releases {
		if sel.Sel.Name == m {
			return true
		}
	}
	return false
}

// drains reports whether e is `<-r.C` (timer drain).
func drains(pass *analysis.Pass, e *ast.UnaryExpr, r *resource) bool {
	if !r.drainC || e.Op != token.ARROW {
		return false
	}
	sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "C" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == r.obj
}

// escapes reports whether r leaves the function's custody: returned,
// passed as a call argument, sent on a channel, aliased by assignment, or
// captured by a closure. An escaped handle is its new owner's to close.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, r *resource) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc || n == r.create {
			return !esc
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				// `return s.Close()` releases; it does not hand s out.
				if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && releasesResource(pass, call, r) {
					continue
				}
				if containsObj(pass, e, r.obj) {
					esc = true
				}
			}
		case *ast.CallExpr:
			if releasesResource(pass, n, r) {
				return true
			}
			for _, arg := range n.Args {
				if containsObj(pass, arg, r.obj) {
					esc = true
				}
			}
		case *ast.SendStmt:
			if containsObj(pass, n.Value, r.obj) {
				esc = true
			}
		case *ast.AssignStmt:
			for _, e := range n.Rhs {
				if bareObj(pass, e, r.obj) {
					esc = true
				}
			}
			// Rebinding the variable loses track of the original handle;
			// stay quiet rather than follow aliases.
			for _, e := range n.Lhs {
				if bareObj(pass, e, r.obj) {
					esc = true
				}
			}
		case *ast.ValueSpec:
			// `var data Iface = handle` aliases custody away just like an
			// assignment would.
			for _, e := range n.Values {
				if bareObj(pass, e, r.obj) {
					esc = true
				}
			}
		case *ast.FuncLit:
			if containsObj(pass, n.Body, r.obj) {
				esc = true
			}
			return false
		}
		return !esc
	})
	return esc
}

// bareObj reports whether e is exactly the variable (or its address).
func bareObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.AND {
		e = ast.Unparen(un.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

func containsObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// leaks runs the path DFS: true when some path from the creation reaches
// Exit without releasing r.
func leaks(pass *analysis.Pass, g *cfg.Graph, r *resource) bool {
	// Locate the creation node.
	var startBlk *cfg.Block
	startIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == r.create {
				startBlk, startIdx = b, i
				break
			}
		}
		if startBlk != nil {
			break
		}
	}
	if startBlk == nil {
		return false
	}

	visited := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block, from int) bool
	walk = func(b *cfg.Block, from int) bool {
		for i := from; i < len(b.Nodes); i++ {
			if nodeReleases(pass, b.Nodes[i], r) {
				return false // this path is satisfied
			}
		}
		skip := errTrueSucc(pass, b, r)
		for si, s := range b.Succs {
			if si == skip {
				continue
			}
			if s == g.Exit {
				return true
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(startBlk, startIdx+1)
}

// nodeReleases reports whether executing node n releases r.
func nodeReleases(pass *analysis.Pass, n ast.Node, r *resource) bool {
	released := false
	cfg.ScanNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if releasesResource(pass, m, r) {
				released = true
			}
		case *ast.UnaryExpr:
			if drains(pass, m, r) {
				released = true
			}
		}
		return !released
	})
	return released
}

// errTrueSucc returns the successor index that carries the error-true arm
// of r's own creation guard when b ends in `err != nil` / `err == nil`
// (the creation failed there, so the handle does not exist), or -1.
func errTrueSucc(pass *analysis.Pass, b *cfg.Block, r *resource) int {
	if r.errObj == nil || len(b.Nodes) == 0 || len(b.Succs) < 2 {
		return -1
	}
	bin, ok := b.Nodes[len(b.Nodes)-1].(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return -1
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if !isNil(pass, y) {
		x, y = y, x
	}
	if !isNil(pass, y) || !bareObj(pass, x, r.errObj) {
		return -1
	}
	if bin.Op == token.NEQ {
		return 0 // then-branch is error-true
	}
	return 1 // else/after-branch is error-true
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.ObjectOf(id).(*types.Nil)
	return isNilObj
}

// checkGoroutine flags `go func(){...}()` whose closure offers no join or
// termination signal: nothing closes or sends on a channel, no
// WaitGroup.Done (or any .Done call), no cancellation receive, no
// range-over-channel.
func checkGoroutine(pass *analysis.Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	joinable := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joinable {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joinable = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && pass.TypesInfo.ObjectOf(fun) == nil ||
					isBuiltinClose(pass, fun) {
					joinable = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
					joinable = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && vetutil.CancellationExpr(pass.TypesInfo, n.X) {
				joinable = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joinable = true
				}
			}
		}
		return !joinable
	})
	if !joinable {
		pass.Reportf(g.Pos(),
			"goroutine is unjoinable: nothing signals its termination (no WaitGroup.Done, no done-channel close/send, no cancellation receive); shutdown cannot wait for it")
	}
}

func isBuiltinClose(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && id.Name == "close"
}
