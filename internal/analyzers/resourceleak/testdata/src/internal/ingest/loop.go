// Package ingest carries resourceleak's seeded regressions: the commit
// loop's flush ticker outliving shutdown (the loop returned on stop
// without Stop()ing the ticker), and a fire-and-forget goroutine that
// nothing can join.
package ingest

import "time"

type worker struct {
	stopc chan struct{}
}

func (w *worker) flush() {}

// runBroken is the pre-repair commit loop: return leaves the ticker
// running.
func (w *worker) runBroken() {
	t := time.NewTicker(time.Second) // want `time\.Ticker may reach a return without Stop`
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
			w.flush()
		}
	}
}

// run is the repaired loop.
func (w *worker) run() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
			w.flush()
		}
	}
}

// spawnBroken fires a goroutine nothing can join or stop.
func (w *worker) spawnBroken() {
	go func() { // want `goroutine is unjoinable`
		for i := 0; i < 10; i++ {
			w.flush()
		}
	}()
}

// spawnJoined signals completion through a done channel.
func (w *worker) spawnJoined(done chan struct{}) {
	go func() {
		defer close(done)
		w.flush()
	}()
}

// spawnCancellable watches the stop channel.
func (w *worker) spawnCancellable() {
	go func() {
		for {
			select {
			case <-w.stopc:
				return
			default:
				w.flush()
			}
		}
	}()
}
