// Package a exercises the path proofs: tickers, timers, files, and
// module Open* handles must release on every path.
package a

import (
	"errors"
	"os"
	"time"
)

func work()           {}
func cond() bool      { return false }
func sink(f *os.File) {}

// tickerLeak returns from inside the loop without stopping the ticker.
func tickerLeak(stopc chan struct{}) {
	t := time.NewTicker(time.Second) // want `time\.Ticker may reach a return without Stop`
	for {
		select {
		case <-stopc:
			return
		case <-t.C:
			work()
		}
	}
}

// tickerDefer is the idiomatic fix: one defer covers every path.
func tickerDefer(stopc chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-t.C:
			work()
		}
	}
}

// tickerExplicit stops on both explicit paths.
func tickerExplicit() {
	t := time.NewTicker(time.Second)
	if cond() {
		t.Stop()
		return
	}
	work()
	t.Stop()
}

// tickerForever never returns: a loop with no exit holds its ticker by
// design and is not a leak (ctxflow owns the no-cancellation complaint).
func tickerForever() {
	t := time.NewTicker(time.Second)
	for {
		<-t.C
		work()
	}
}

// timerDrain releases the timer by receiving its fire.
func timerDrain() {
	tm := time.NewTimer(time.Second)
	<-tm.C
	work()
}

// timerLeak can return before the timer fires or is stopped.
func timerLeak(donec chan struct{}) {
	tm := time.NewTimer(time.Second) // want `time\.Timer may reach a return without Stop`
	select {
	case <-donec:
		return
	case <-tm.C:
	}
}

// fileGuarded is the canonical shape: the error-true arm carries no file.
func fileGuarded(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	work()
	return nil
}

// fileLeakMidway closes at the end but not on the early return.
func fileLeakMidway(path string) error {
	f, err := os.Open(path) // want `os\.File may reach a return without Close`
	if err != nil {
		return err
	}
	if cond() {
		return errors.New("midway")
	}
	f.Close()
	return nil
}

// fileEscapesReturn transfers ownership to the caller.
func fileEscapesReturn(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// fileEscapesArg hands the file to another owner.
func fileEscapesArg(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	sink(f)
}
