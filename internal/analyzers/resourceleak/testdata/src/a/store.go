package a

// store mimics the module's own handle shape: an Open* constructor
// returning a closeable handle.
type store struct{ open bool }

func (s *store) Close() error { s.open = false; return nil }

func OpenStore(path string) (*store, error) {
	return &store{open: true}, nil
}

// storeLeak forgets Close on the early return.
func storeLeak(path string) error {
	s, err := OpenStore(path) // want `store handle may reach a return without Close`
	if err != nil {
		return err
	}
	if cond() {
		return nil
	}
	return s.Close()
}

// storeClean defers the close.
func storeClean(path string) error {
	s, err := OpenStore(path)
	if err != nil {
		return err
	}
	defer s.Close()
	work()
	return nil
}
