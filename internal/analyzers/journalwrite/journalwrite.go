// Package journalwrite flags block mutations that bypass the maintenance
// journal.
//
// PR 1 made every maintenance batch atomic by routing block writes through
// the write-ahead block journal (storage.Durable under tile.Store). That
// guarantee only holds if no engine writes blocks behind the journal's
// back: a direct FileStore.WriteBlock from a maintenance path would leave a
// crash window in which the transform is half pre-batch, half post-batch —
// exactly the hybrid state the SHIFT-SPLIT identities (paper Results 1–6)
// assume cannot exist.
//
// The analyzer therefore flags calls to the raw block-mutating storage
// APIs — WriteBlock and Truncate on any storage.BlockStore implementation,
// and the TruncateIfAble helper — outside the packages that are the
// journal/commit/recovery machinery itself (internal/storage), the
// sanctioned tiled write path that commits through it (internal/tile), and
// the serve cache's write-through invalidation (internal/cache). Everything
// else must mutate blocks through tile.Store / tile.Batch, whose Commit
// seals the batch.
package journalwrite

import (
	"go/ast"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the journalwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "journalwrite",
	Doc:  "flag direct block mutations that bypass the maintenance journal",
	Run:  run,
}

// mutatingMethods are the BlockStore-level entry points that change the
// medium. Commit is deliberately absent: it is the sanctioned sealing call.
var mutatingMethods = map[string]bool{
	"WriteBlock": true,
	"Truncate":   true,
}

// mutatingFuncs are package-level storage helpers with the same effect.
var mutatingFuncs = map[string]bool{
	"TruncateIfAble": true,
}

// allowedPkgs may touch blocks directly: the journal protocol itself and
// its recovery path live in internal/storage, the tiled write path (which
// ends every batch with a Commit) in internal/tile, and the serve cache's
// write-through in internal/cache.
var allowedPkgs = []string{
	"internal/storage",
	"internal/tile",
	"internal/cache",
}

func run(pass *analysis.Pass) error {
	if vetutil.HasAnyPathSuffix(pass.Pkg.Path(), allowedPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := vetutil.Callee(pass.TypesInfo, call)
			if fn == nil || !vetutil.HasPathSuffix(vetutil.DeclPkgPath(fn), "internal/storage") {
				return true
			}
			sig := fn.Type().(*types.Signature)
			switch {
			case sig.Recv() != nil && mutatingMethods[fn.Name()]:
				pass.Reportf(call.Pos(),
					"direct %s on a storage device bypasses the maintenance journal; write through tile.Store/tile.Batch and seal the batch with Commit",
					fn.Name())
			case sig.Recv() == nil && mutatingFuncs[fn.Name()]:
				pass.Reportf(call.Pos(),
					"storage.%s mutates blocks behind the journal; only the journal protocol may truncate stores",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
