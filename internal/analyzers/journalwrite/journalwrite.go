// Package journalwrite flags block mutations that bypass the maintenance
// journal.
//
// PR 1 made every maintenance batch atomic by routing block writes through
// the write-ahead block journal (storage.Durable under tile.Store). That
// guarantee only holds if no engine writes blocks behind the journal's
// back: a direct FileStore.WriteBlock from a maintenance path would leave a
// crash window in which the transform is half pre-batch, half post-batch —
// exactly the hybrid state the SHIFT-SPLIT identities (paper Results 1–6)
// assume cannot exist.
//
// The analyzer therefore flags calls to the raw block-mutating storage
// APIs — WriteBlock and Truncate on any storage.BlockStore implementation,
// and the TruncateIfAble helper — outside the packages that are the
// journal/commit/recovery machinery itself (internal/storage), the
// sanctioned tiled write path that commits through it (internal/tile), and
// the serve cache's write-through invalidation (internal/cache). Everything
// else must mutate blocks through tile.Store / tile.Batch, whose Commit
// seals the batch.
//
// A second rule guards the parallel maintenance engine's write discipline:
// tile-level mutations (WriteTile, Set, Add, ApplyBuckets) issued from an ad
// hoc go statement. The engine keeps results bit-identical and journal
// batches deterministic by funneling every tile mutation through one
// goroutine per tile in a fixed order (internal/parallel's Run consumer and
// Applier shards); a goroutine launched elsewhere that writes tiles races
// that ordering and the journal's batch boundary. Only the engine packages
// themselves (internal/tile, internal/parallel, internal/transform,
// internal/appender) may mutate tiles from goroutines they manage.
package journalwrite

import (
	"go/ast"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the journalwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "journalwrite",
	Doc:  "flag direct block mutations that bypass the maintenance journal",
	Run:  run,
}

// mutatingMethods are the BlockStore-level entry points that change the
// medium. Commit is deliberately absent: it is the sanctioned sealing call.
var mutatingMethods = map[string]bool{
	"WriteBlock": true,
	"Truncate":   true,
}

// mutatingFuncs are package-level storage helpers with the same effect.
var mutatingFuncs = map[string]bool{
	"TruncateIfAble": true,
}

// allowedPkgs may touch blocks directly: the journal protocol itself and
// its recovery path live in internal/storage, the tiled write path (which
// ends every batch with a Commit) in internal/tile, and the serve cache's
// write-through in internal/cache.
var allowedPkgs = []string{
	"internal/storage",
	"internal/tile",
	"internal/cache",
}

// tileMutators are the tile-level mutation entry points that the parallel
// engine applies in a deterministic order; calling them from an ad hoc
// goroutine forfeits that order.
var tileMutators = map[string]bool{
	"WriteTile":    true,
	"Set":          true,
	"Add":          true,
	"ApplyBuckets": true,
}

// goroutineWritePkgs own goroutines that are allowed to mutate tiles: the
// tiled write path itself and the maintenance engines built on the parallel
// worker pool.
var goroutineWritePkgs = []string{
	"internal/storage",
	"internal/tile",
	"internal/cache",
	"internal/parallel",
	"internal/transform",
	"internal/appender",
}

func run(pass *analysis.Pass) error {
	checkRaw := !vetutil.HasAnyPathSuffix(pass.Pkg.Path(), allowedPkgs...)
	checkGo := !vetutil.HasAnyPathSuffix(pass.Pkg.Path(), goroutineWritePkgs...)
	if !checkRaw && !checkGo {
		return nil
	}
	for _, f := range pass.Files {
		if checkRaw {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := vetutil.Callee(pass.TypesInfo, call)
				if fn == nil || !vetutil.HasPathSuffix(vetutil.DeclPkgPath(fn), "internal/storage") {
					return true
				}
				sig := fn.Type().(*types.Signature)
				switch {
				case sig.Recv() != nil && mutatingMethods[fn.Name()]:
					pass.Reportf(call.Pos(),
						"direct %s on a storage device bypasses the maintenance journal; write through tile.Store/tile.Batch and seal the batch with Commit",
						fn.Name())
				case sig.Recv() == nil && mutatingFuncs[fn.Name()]:
					pass.Reportf(call.Pos(),
						"storage.%s mutates blocks behind the journal; only the journal protocol may truncate stores",
						fn.Name())
				}
				return true
			})
		}
		if checkGo {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoroutineTileWrites(pass, g)
				return true
			})
		}
	}
	return nil
}

// checkGoroutineTileWrites reports tile mutations anywhere inside a go
// statement — in the launched function literal's body or in a function
// value's arguments.
func checkGoroutineTileWrites(pass *analysis.Pass, g *ast.GoStmt) {
	ast.Inspect(g.Call, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := vetutil.Callee(pass.TypesInfo, call)
		if fn == nil || !vetutil.HasPathSuffix(vetutil.DeclPkgPath(fn), "internal/tile") {
			return true
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() != nil && tileMutators[fn.Name()] {
			pass.Reportf(call.Pos(),
				"tile.%s from an ad hoc goroutine races the maintenance engine's deterministic write order; route tile mutations through parallel.Run/Applier or apply them on one goroutine",
				fn.Name())
		}
		return true
	})
}
