// Package a exercises the journalwrite analyzer: direct block mutations
// from an engine-level package must be flagged; reads and the sanctioned
// tile.Store write path must not.
package a

import (
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

func direct(bs storage.BlockStore, fs *storage.FileStore, buf []float64) error {
	if err := bs.WriteBlock(0, buf); err != nil { // want `bypasses the maintenance journal`
		return err
	}
	if err := fs.WriteBlock(1, buf); err != nil { // want `bypasses the maintenance journal`
		return err
	}
	if err := fs.Truncate(); err != nil { // want `bypasses the maintenance journal`
		return err
	}
	if err := storage.TruncateIfAble(bs); err != nil { // want `only the journal protocol may truncate`
		return err
	}
	return bs.ReadBlock(0, buf) // reads never bypass anything
}

func sanctioned(st *tile.Store, buf []float64) error {
	if err := st.WriteTile(0, buf); err != nil { // the journaled path: no finding
		return err
	}
	if err := st.Set([]int{0, 0}, 1.5); err != nil {
		return err
	}
	return st.Commit()
}

func suppressed(fs *storage.FileStore, buf []float64) error {
	//shiftsplitvet:ignore journalwrite -- recovery tooling writes raw blocks on purpose
	return fs.WriteBlock(2, buf)
}

func adHocGoroutine(st *tile.Store, buf []float64) {
	done := make(chan error, 2)
	go func() {
		done <- st.WriteTile(3, buf) // want `tile.WriteTile from an ad hoc goroutine`
	}()
	go func() {
		done <- st.Set([]int{1, 1}, 2.0) // want `tile.Set from an ad hoc goroutine`
	}()
	<-done
	<-done
}

func goroutineReadsAreFine(st *tile.Store) {
	done := make(chan error, 1)
	go func() {
		_, err := st.ReadTile(0) // reads from goroutines are the serving path: no finding
		done <- err
	}()
	<-done
}
