// Package storage stands in for the real journal machinery: its import
// path ends in internal/storage, so direct block mutation is allowed and
// nothing here may be flagged.
package storage

import "github.com/shiftsplit/shiftsplit/internal/storage"

// Apply mimics a journal replay loop: raw writes are this package's job.
func Apply(bs storage.BlockStore, ids []int, blocks [][]float64) error {
	for i, id := range ids {
		if err := bs.WriteBlock(id, blocks[i]); err != nil {
			return err
		}
	}
	return storage.TruncateIfAble(bs)
}
