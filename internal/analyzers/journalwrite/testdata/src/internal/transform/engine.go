// Package transform stands in for the maintenance engines: its import path
// ends in internal/transform, which owns worker-pool goroutines, so tile
// mutations from goroutines it launches are its job and must not be flagged.
package transform

import "github.com/shiftsplit/shiftsplit/internal/tile"

// Fan mimics an engine worker applying tile writes on its own goroutine.
func Fan(st *tile.Store, buf []float64) error {
	done := make(chan error, 1)
	go func() {
		done <- st.WriteTile(0, buf)
	}()
	return <-done
}
