package journalwrite_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/journalwrite"
)

func TestJournalWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), journalwrite.Analyzer, "a", "internal/storage", "internal/transform")
}
