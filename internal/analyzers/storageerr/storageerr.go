// Package storageerr is a scoped errcheck: every error returned by the
// storage stack must be looked at.
//
// The crash-safety story of PR 1 is only as strong as its weakest caller: a
// dropped error from WriteBlock, Commit, or an appender merge means a
// maintenance batch may silently be missing from the medium while the
// in-memory state claims otherwise — precisely the torn state fsck exists
// to detect. Generic errcheck is too noisy to keep on in CI; this analyzer
// checks only calls into the packages that own durable state: the module
// root (Store, Appender, Fsck), internal/storage, internal/tile,
// internal/appender, and internal/cache.
//
// Flagged: an in-scope error-returning call used as a bare statement, or
// launched via go/defer (a deferred error-returning call loses its result).
// Allowed: `defer x.Close()` (the conventional best-effort release — but
// only for Close), and explicit discards `_ = f()`, which read as a
// decision rather than an oversight.
package storageerr

import (
	"go/ast"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the storageerr check.
var Analyzer = &analysis.Analyzer{
	Name: "storageerr",
	Doc:  "flag ignored errors from the storage, tile, appender, and journal APIs",
	Run:  run,
}

// scopedPkgs declare the APIs whose errors must not be dropped.
var scopedPkgs = []string{
	"internal/storage",
	"internal/tile",
	"internal/appender",
	"internal/cache",
}

func inScope(fn string) bool {
	return fn == vetutil.RootPkgPath || vetutil.HasAnyPathSuffix(fn, scopedPkgs...)
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					check(pass, call, "")
				}
			case *ast.GoStmt:
				check(pass, stmt.Call, "go")
			case *ast.DeferStmt:
				check(pass, stmt.Call, "defer")
			}
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, call *ast.CallExpr, keyword string) {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil || !inScope(vetutil.DeclPkgPath(fn)) {
		return
	}
	if !vetutil.ResultError(pass.TypesInfo, call) {
		return
	}
	if keyword == "defer" && fn.Name() == "Close" {
		return // best-effort release; every other deferred error must be wrapped
	}
	qualifier := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if name, ok := vetutil.NamedIn(recv.Type(), vetutil.DeclPkgPath(fn)); ok {
			qualifier = name + "." + fn.Name()
		}
	}
	switch keyword {
	case "go":
		pass.Reportf(call.Pos(), "error from %s is lost in a go statement; collect it in the goroutine", qualifier)
	case "defer":
		pass.Reportf(call.Pos(), "error from deferred %s is discarded; capture it in a named-return wrapper or use `defer func() { _ = ... }` to make the discard explicit", qualifier)
	default:
		pass.Reportf(call.Pos(), "error from %s is ignored; storage errors must surface (use `_ =` only for a deliberate discard)", qualifier)
	}
}
