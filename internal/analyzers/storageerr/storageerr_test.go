package storageerr_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/storageerr"
)

func TestStorageErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), storageerr.Analyzer, "a")
}
