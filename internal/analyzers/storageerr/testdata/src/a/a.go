// Package a exercises the storageerr analyzer: errors from the storage
// stack must be looked at, explicitly discarded, or (for Close only)
// deferred.
package a

import (
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

func bare(bs storage.BlockStore, buf []float64) {
	bs.WriteBlock(0, buf) // want `error from BlockStore.WriteBlock is ignored`
	bs.ReadBlock(0, buf)  // want `error from BlockStore.ReadBlock is ignored`
}

func lost(d *storage.Durable) {
	go d.Commit() // want `error from Durable.Commit is lost in a go statement`
}

func deferred(d *storage.Durable, fs *storage.FileStore) {
	defer d.Commit() // want `error from deferred Durable.Commit is discarded`
	defer fs.Close() // Close is the conventional best-effort release: allowed
}

func fine(bs storage.BlockStore, buf []float64) error {
	if err := bs.WriteBlock(0, buf); err != nil {
		return err
	}
	_ = bs.ReadBlock(0, buf) // explicit discard: allowed
	return nil
}

func suppressed(bs storage.BlockStore, buf []float64) {
	//shiftsplitvet:ignore storageerr -- fault-injection harness discards on purpose
	bs.WriteBlock(1, buf)
}
