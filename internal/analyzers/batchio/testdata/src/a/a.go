// Package a is not an engine package, so per-block loops — the batch
// helpers' own fallback, wrappers, tests — are left alone here.
package a

import "github.com/shiftsplit/shiftsplit/internal/storage"

func loopOutsideEngines(bs storage.BlockStore, ids []int, buf []float64) error {
	for _, id := range ids {
		if err := bs.ReadBlock(id, buf); err != nil { // allowed: not an engine package
			return err
		}
	}
	return nil
}
