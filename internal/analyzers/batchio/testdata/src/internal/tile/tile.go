// Package tile stands in for an engine package: its import path ends in
// internal/tile, so per-block I/O loops over loop-derived ids are flagged.
package tile

import (
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

func readLoop(bs storage.BlockStore, ids []int, buf []float64) error {
	for i := 0; i < len(ids); i++ {
		if err := bs.ReadBlock(ids[i], buf); err != nil { // want `per-block ReadBlock in a loop`
			return err
		}
	}
	return nil
}

func rangeWriteLoop(bs storage.BlockStore, ids []int, data []float64) error {
	for _, id := range ids {
		if err := bs.WriteBlock(id, data); err != nil { // want `per-block WriteBlock in a loop`
			return err
		}
	}
	return nil
}

func tileLoop(st *tile.Store, blocks []int) error {
	for _, b := range blocks {
		data, err := st.ReadTile(b) // want `per-block ReadTile in a loop`
		if err != nil {
			return err
		}
		if err := st.WriteTile(b, data); err != nil { // want `per-block WriteTile in a loop`
			return err
		}
	}
	return nil
}

func externalCounter(bs storage.BlockStore, n int, buf []float64) error {
	i := 0
	for ; i < n; i++ {
		if err := bs.ReadBlock(i, buf); err != nil { // want `per-block ReadBlock in a loop`
			return err
		}
	}
	return nil
}

func derivedID(bs storage.BlockStore, base, n int, buf []float64) error {
	for i := 0; i < n; i++ {
		if err := bs.ReadBlock(base+2*i, buf); err != nil { // want `per-block ReadBlock in a loop`
			return err
		}
	}
	return nil
}

type bucket struct{ Block int }

func derivedLocal(st *tile.Store, buckets []bucket) error {
	for i := range buckets {
		b := &buckets[i]
		data, err := st.ReadTile(b.Block) // want `per-block ReadTile in a loop`
		if err != nil {
			return err
		}
		if err := st.WriteTile(b.Block, data); err != nil { // want `per-block WriteTile in a loop`
			return err
		}
	}
	return nil
}

func fixedIDInLoop(bs storage.BlockStore, n int, buf []float64) error {
	// The id does not depend on the loop: re-reading block 0 each round is
	// not a batchable sweep.
	for i := 0; i < n; i++ {
		if err := bs.ReadBlock(0, buf); err != nil {
			return err
		}
	}
	return nil
}

func batchedAlready(bs storage.BlockStore, ids []int, bufs [][]float64) error {
	return storage.ReadBlocksOf(bs, ids, bufs) // the sanctioned path
}

func singleRead(bs storage.BlockStore, buf []float64) error {
	return bs.ReadBlock(7, buf) // not in a loop: allowed
}

func suppressed(bs storage.BlockStore, ids []int, buf []float64) error {
	for _, id := range ids {
		//shiftsplitvet:ignore batchio -- deliberate per-block probe for this fixture
		if err := bs.ReadBlock(id, buf); err != nil {
			return err
		}
	}
	return nil
}
