package batchio_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/batchio"
)

func TestBatchIO(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), batchio.Analyzer, "a", "internal/tile")
}
