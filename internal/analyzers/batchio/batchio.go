// Package batchio keeps the engine layers on the vectored I/O path.
//
// PR 5 made ReadBlocks/WriteBlocks (and the tile layer's ReadTiles/
// WriteTiles) first-class: every storage wrapper forwards batches natively,
// so a loop that issues one ReadBlock or WriteTile per iteration forfeits
// run coalescing — one positional syscall per consecutive id run — and
// regresses to one device request per block. Inside the engine packages
// (tile, transform, appender, reconstruct, query, parallel) that is almost
// always an accident: the loop already knows its id set up front and should
// collect it into one batched call.
//
// The analyzer flags ReadBlock/WriteBlock/ReadTile/WriteTile calls, on
// storage or tile receivers, that sit inside a for or range loop and take a
// block id derived from a loop variable. Intentional per-block loops (rare:
// an access pattern that genuinely cannot be enumerated, or a fallback the
// batch helpers themselves implement) carry a
// //shiftsplitvet:ignore batchio comment with the reason.
package batchio

import (
	"go/ast"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the batchio check.
var Analyzer = &analysis.Analyzer{
	Name: "batchio",
	Doc:  "flag per-block ReadBlock/WriteBlock loops in engine packages that should use the vectored batch calls",
	Run:  run,
}

// enginePkgs are the layers whose I/O loops enumerate their ids up front
// and therefore have no excuse for per-block calls.
var enginePkgs = []string{
	"internal/tile",
	"internal/transform",
	"internal/appender",
	"internal/reconstruct",
	"internal/query",
	"internal/parallel",
}

// batched maps each per-block method to its vectored replacement.
var batched = map[string]string{
	"ReadBlock":  "ReadBlocks",
	"WriteBlock": "WriteBlocks",
	"ReadTile":   "ReadTiles",
	"WriteTile":  "WriteTiles",
}

func run(pass *analysis.Pass) error {
	if !vetutil.HasAnyPathSuffix(pass.Pkg.Path(), enginePkgs...) {
		return nil
	}
	reported := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vars := loopVars(pass.TypesInfo, n)
			if vars == nil {
				return true
			}
			body := loopBody(n)
			addDerived(pass.TypesInfo, body, vars)
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || reported[call] {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				repl, ok := batched[sel.Sel.Name]
				if !ok || len(call.Args) == 0 {
					return true
				}
				recv := vetutil.ReceiverType(pass.TypesInfo, call)
				if !storageReceiver(recv) {
					return true
				}
				if !usesAny(pass.TypesInfo, call.Args[0], vars) {
					return true
				}
				reported[call] = true
				pass.Reportf(call.Pos(),
					"per-block %s in a loop over block ids; collect the ids and issue one %s (vectored runs coalesce into single device requests)",
					sel.Sel.Name, repl)
				return true
			})
			return true
		})
	}
	return nil
}

// loopVars returns the loop variables a for/range statement introduces or
// steps, or nil when n is not a loop.
func loopVars(info *types.Info, n ast.Node) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	collect := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	switch loop := n.(type) {
	case *ast.ForStmt:
		if assign, ok := loop.Init.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				collect(lhs)
			}
		}
		// `for ; i < n; i++` steps a variable declared outside Init.
		if inc, ok := loop.Post.(*ast.IncDecStmt); ok {
			collect(inc.X)
		}
	case *ast.RangeStmt:
		collect(loop.Key)
		collect(loop.Value)
	default:
		return nil
	}
	if len(vars) == 0 {
		return nil
	}
	return vars
}

// addDerived grows vars with locals the loop body assigns from loop-var
// expressions (`b := &buckets[i]`, `id := base + i`), iterating to a
// fixpoint so short chains are followed too. This is what catches the
// common `b := &items[i]; st.ReadTile(b.Block)` shape.
func addDerived(info *types.Info, body *ast.BlockStmt, vars map[types.Object]bool) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || vars[obj] {
					continue
				}
				if usesAny(info, assign.Rhs[i], vars) {
					vars[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch loop := n.(type) {
	case *ast.ForStmt:
		return loop.Body
	case *ast.RangeStmt:
		return loop.Body
	}
	return nil
}

// storageReceiver reports whether t names a type from the storage or tile
// layers (pointer-stripped), including the BlockStore interface itself.
func storageReceiver(t types.Type) bool {
	if _, ok := vetutil.NamedIn(t, "internal/storage"); ok {
		return true
	}
	_, ok := vetutil.NamedIn(t, "internal/tile")
	return ok
}

// usesAny reports whether expr mentions any of the given objects.
func usesAny(info *types.Info, expr ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && vars[obj] {
			found = true
		}
		return true
	})
	return found
}
