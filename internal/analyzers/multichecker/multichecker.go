// Package multichecker drives a set of analysis.Analyzers over package
// patterns, printing findings in the familiar `file:line:col: message
// (analyzer)` shape and reporting by exit code — the engine behind
// cmd/shiftsplitvet.
package multichecker

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/load"
)

// Exit codes: 0 = clean, 1 = diagnostics reported, 2 = usage or load error.
// They are part of the CI contract (-json consumers branch on them) and
// must not change.
const (
	ExitClean       = 0
	ExitDiagnostics = 1
	ExitError       = 2
)

// Finding is the machine-readable form of one diagnostic (-json output).
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Report is the top-level -json document.
type Report struct {
	Findings []Finding `json:"findings"`
	Count    int       `json:"count"`
}

// Main runs the analyzers against os.Args and exits with the run's code.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr, analyzers...))
}

// Run parses args (flags plus package patterns, default "./...") and
// applies every selected analyzer to every matched package.
func Run(args []string, stdout, stderr io.Writer, analyzers ...*analysis.Analyzer) int {
	fs := flag.NewFlagSet("shiftsplitvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("dir", "", "directory to resolve patterns from (default: current directory)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON report on stdout (exit codes unchanged: 0 clean, 1 findings, 2 load error)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: shiftsplitvet [flags] [packages]\n\n"+
			"Static checks for the shiftsplit storage, concurrency, and\n"+
			"wavelet-math invariants. With no packages, checks ./... .\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nAnalyzers:\n")
		writeAnalyzerList(stderr, analyzers)
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		writeAnalyzerList(stdout, analyzers)
		return ExitClean
	}

	selected := analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "shiftsplitvet: unknown analyzer %q\n", name)
				return ExitError
			}
			selected = append(selected, a)
		}
	}

	// Packages arrive in dependency order, so the shared fact store is
	// populated by a dependency's pass before its importers run.
	pkgs, err := load.Load(load.Config{Dir: *dir}, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "shiftsplitvet: %v\n", err)
		return ExitError
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "shiftsplitvet: no packages matched %s\n", strings.Join(fs.Args(), " "))
		return ExitError
	}

	facts := analysis.NewFacts()
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range selected {
			pass := analysis.NewPass(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, func(d analysis.Diagnostic) {
				diags = append(diags, d)
			}).WithFacts(facts)
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "shiftsplitvet: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return ExitError
			}
		}
	}
	if len(diags) == 0 {
		if *jsonOut {
			writeJSON(stdout, stderr, nil)
		}
		return ExitClean
	}

	fset := pkgs[0].Fset
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	cwd, _ := os.Getwd()
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		findings = append(findings, Finding{
			Analyzer: d.Analyzer.Name,
			File:     name,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		})
	}
	if *jsonOut {
		writeJSON(stdout, stderr, findings)
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	fmt.Fprintf(stderr, "shiftsplitvet: %d finding(s)\n", len(findings))
	return ExitDiagnostics
}

func writeJSON(stdout, stderr io.Writer, findings []Finding) {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Report{Findings: findings, Count: len(findings)}); err != nil {
		fmt.Fprintf(stderr, "shiftsplitvet: encode report: %v\n", err)
	}
}

func writeAnalyzerList(w io.Writer, analyzers []*analysis.Analyzer) {
	for _, a := range analyzers {
		summary := a.Doc
		if i := strings.IndexByte(summary, '\n'); i >= 0 {
			summary = summary[:i]
		}
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, summary)
	}
}
