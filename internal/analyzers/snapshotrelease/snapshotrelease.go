// Package snapshotrelease proves MVCC snapshot pins balanced on every
// path: a handle obtained from an Acquire/AcquireSnapshot call whose
// result type has a Release method must reach Release() before every
// return. An unreleased snapshot pins its epoch's remap table forever —
// the store can never retire the epoch or reclaim its physical blocks, so
// the leak is disk that grows with every maintenance flip, not just a
// forgotten file descriptor.
//
// The path proof reuses the resourceleak engine: a DFS over the
// function's CFG from the acquisition site, where a path is satisfied
// when it executes Release and leaky when it reaches Exit without one. A
// defer satisfies every path at once. Snapshots that escape the function
// — returned, stored, passed, sent, captured — transfer the pin to their
// new owner and are not this function's to release (Store.AcquireSnapshot
// itself returns the storage pin it takes, which is exactly this shape).
//
// Release is idempotent by contract, so the analyzer never complains
// about double release — only about paths with none.
package snapshotrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/cfg"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the snapshotrelease check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotrelease",
	Doc:  "acquired epoch snapshots must reach Release on every path; an unreleased pin blocks epoch retirement and physical-block reclamation forever",
	Run:  run,
}

// pin is one tracked acquisition.
type pin struct {
	obj    types.Object // the variable bound to the snapshot
	errObj types.Object // the err bound by the same assignment (nil if none)
	pos    token.Pos
	what   string   // diagnostic noun, e.g. "Snapshot pin"
	create ast.Node // the acquiring statement (skipped in scans)
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkBody runs the path proof for every snapshot acquired directly in
// body (function literals are their own bodies and checked separately).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	pins := findAcquisitions(pass, body)
	if len(pins) == 0 {
		return
	}
	g := cfg.New(body)
	for _, p := range pins {
		if deferReleases(pass, body, p) || escapes(pass, body, p) {
			continue
		}
		if leaks(pass, g, p) {
			pass.Reportf(p.pos, "%s may reach a return without Release on some path; an unreleased snapshot pins its epoch forever, so release it on every path (a defer covers all of them)",
				p.what)
		}
	}
}

// findAcquisitions collects tracked Acquire/AcquireSnapshot calls
// assigned to fresh local variables, outside nested function literals.
func findAcquisitions(pass *analysis.Pass, body *ast.BlockStmt) []*pin {
	var out []*pin
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		p := classifyAcquire(pass, call)
		if p == nil {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		p.obj = pass.TypesInfo.ObjectOf(id)
		if p.obj == nil {
			return true
		}
		if len(as.Lhs) > 1 {
			if errID, ok := as.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
				p.errObj = pass.TypesInfo.ObjectOf(errID)
			}
		}
		p.pos = call.Pos()
		p.create = as
		out = append(out, p)
		return true
	})
	return out
}

// classifyAcquire recognizes the acquiring calls this analyzer tracks: a
// method or function named Acquire/AcquireSnapshot whose first result
// type carries a Release method. The name pair is the store API's own
// shape (Store.AcquireSnapshot over storage.Versioned.Acquire); the
// Release requirement keeps unrelated Acquire vocabulary (semaphores
// returning error, pools returning put-back values) out of scope.
func classifyAcquire(pass *analysis.Pass, call *ast.CallExpr) *pin {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if fn.Name() != "Acquire" && fn.Name() != "AcquireSnapshot" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	t := sig.Results().At(0).Type()
	if !hasMethod(t, "Release") {
		return nil
	}
	name := "snapshot"
	if named, ok := derefNamed(t); ok {
		name = named.Obj().Name()
	}
	return &pin{what: name + " pin"}
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

func hasMethod(t types.Type, name string) bool {
	named, ok := derefNamed(t)
	if !ok {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// deferReleases reports whether any defer in body releases p, directly
// or through a deferred closure.
func deferReleases(pass *analysis.Pass, body *ast.BlockStmt, p *pin) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if releasesPin(pass, d.Call, p) {
			found = true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && releasesPin(pass, call, p) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// releasesPin reports whether call is p.Release() on the tracked
// variable.
func releasesPin(pass *analysis.Pass, call *ast.CallExpr, p *pin) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == p.obj
}

// escapes reports whether p leaves the function's custody: returned,
// passed as a call argument, sent on a channel, aliased by assignment, or
// captured by a closure. An escaped snapshot is its new owner's to
// release.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, p *pin) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc || n == p.create {
			return !esc
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if containsObj(pass, e, p.obj) {
					esc = true
				}
			}
		case *ast.CallExpr:
			if releasesPin(pass, n, p) {
				return true
			}
			// Method calls ON the snapshot (snap.Point, snap.ReadBlock) are
			// uses, not custody transfers; only passing it as an argument is.
			for _, arg := range n.Args {
				if containsObj(pass, arg, p.obj) {
					esc = true
				}
			}
		case *ast.SendStmt:
			if containsObj(pass, n.Value, p.obj) {
				esc = true
			}
		case *ast.AssignStmt:
			for _, e := range n.Rhs {
				if bareObj(pass, e, p.obj) {
					esc = true
				}
			}
			// Rebinding the variable loses track of the original pin; stay
			// quiet rather than follow aliases.
			for _, e := range n.Lhs {
				if bareObj(pass, e, p.obj) {
					esc = true
				}
			}
		case *ast.ValueSpec:
			for _, e := range n.Values {
				if bareObj(pass, e, p.obj) {
					esc = true
				}
			}
		case *ast.FuncLit:
			if containsObj(pass, n.Body, p.obj) {
				esc = true
			}
			return false
		}
		return !esc
	})
	return esc
}

// bareObj reports whether e is exactly the variable (or its address).
func bareObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.AND {
		e = ast.Unparen(un.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

func containsObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// leaks runs the path DFS: true when some path from the acquisition
// reaches Exit without releasing p.
func leaks(pass *analysis.Pass, g *cfg.Graph, p *pin) bool {
	var startBlk *cfg.Block
	startIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == p.create {
				startBlk, startIdx = b, i
				break
			}
		}
		if startBlk != nil {
			break
		}
	}
	if startBlk == nil {
		return false
	}

	visited := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block, from int) bool
	walk = func(b *cfg.Block, from int) bool {
		for i := from; i < len(b.Nodes); i++ {
			if nodeReleases(pass, b.Nodes[i], p) {
				return false // this path is satisfied
			}
		}
		skip := errTrueSucc(pass, b, p)
		for si, s := range b.Succs {
			if si == skip {
				continue
			}
			if s == g.Exit {
				return true
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(startBlk, startIdx+1)
}

// nodeReleases reports whether executing node n releases p.
func nodeReleases(pass *analysis.Pass, n ast.Node, p *pin) bool {
	released := false
	cfg.ScanNode(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && releasesPin(pass, call, p) {
			released = true
		}
		return !released
	})
	return released
}

// errTrueSucc returns the successor index carrying the error-true arm of
// p's own acquisition guard when b ends in `err != nil` / `err == nil`
// (the acquisition failed there, so no pin exists), or -1. The current
// Acquire/AcquireSnapshot signatures are infallible, but the guard keeps
// the proof correct should a fallible variant appear.
func errTrueSucc(pass *analysis.Pass, b *cfg.Block, p *pin) int {
	if p.errObj == nil || len(b.Nodes) == 0 || len(b.Succs) < 2 {
		return -1
	}
	bin, ok := b.Nodes[len(b.Nodes)-1].(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return -1
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if !isNil(pass, y) {
		x, y = y, x
	}
	if !isNil(pass, y) || !bareObj(pass, x, p.errObj) {
		return -1
	}
	if bin.Op == token.NEQ {
		return 0 // then-branch is error-true
	}
	return 1 // else/after-branch is error-true
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.ObjectOf(id).(*types.Nil)
	return isNilObj
}
