module github.com/shiftsplit/shiftsplit/vettest

go 1.22
