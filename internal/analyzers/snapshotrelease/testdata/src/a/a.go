// Package a exercises the snapshot-pin path proofs: every
// Acquire/AcquireSnapshot must reach Release on every path unless the
// pin escapes to a new owner.
package a

import "errors"

// snap mirrors the store API's snapshot shape: an immutable pinned view
// with an idempotent Release.
type snap struct{ pinned bool }

func (s *snap) Release()               { s.pinned = false }
func (s *snap) Point(p ...int) float64 { return 0 }

// versioned mirrors storage.Versioned.
type versioned struct{}

func (v *versioned) Acquire() *snap { return &snap{pinned: true} }

// store mirrors the root Store wrapper.
type store struct{ v *versioned }

func (s *store) AcquireSnapshot() *snap { return s.v.Acquire() }

func cond() bool   { return false }
func work()        {}
func sink(s *snap) {}

// leakEarlyReturn releases at the end but not on the early return: the
// epoch stays pinned forever on that path.
func leakEarlyReturn(st *store) float64 {
	s := st.AcquireSnapshot() // want `snap pin may reach a return without Release`
	if cond() {
		return 0
	}
	v := s.Point(1, 2)
	s.Release()
	return v
}

// cleanDefer is the idiomatic fix: one defer covers every path.
func cleanDefer(st *store) float64 {
	s := st.AcquireSnapshot()
	defer s.Release()
	if cond() {
		return 0
	}
	return s.Point(1, 2)
}

// cleanExplicit releases on both explicit paths.
func cleanExplicit(st *store) float64 {
	s := st.AcquireSnapshot()
	if cond() {
		s.Release()
		return 0
	}
	v := s.Point(1, 2)
	s.Release()
	return v
}

// leakLoopReturn returns from inside the loop with the pin still held.
func leakLoopReturn(v *versioned, stopc chan struct{}) {
	s := v.Acquire() // want `snap pin may reach a return without Release`
	for {
		select {
		case <-stopc:
			return
		default:
			_ = s.Point(0)
		}
	}
}

// escapeReturn transfers the pin to the caller — the wrapper shape of
// Store.AcquireSnapshot itself. Not this function's to release.
func escapeReturn(v *versioned) *snap {
	s := v.Acquire()
	return s
}

// escapeArg hands the pin to another owner.
func escapeArg(v *versioned) {
	s := v.Acquire()
	sink(s)
}

// escapeClosure captures the pin; the closure owns its release.
func escapeClosure(v *versioned) func() {
	s := v.Acquire()
	return func() { s.Release() }
}

// sem has the Acquire name but no Release on its result: out of scope.
type sem struct{}

type token struct{}

func (s *sem) Acquire() token { return token{} }

func notASnapshot(s *sem) {
	t := s.Acquire()
	_ = t
}

// fallible exercises the error-guard arm: the error-true path carries no
// pin, so the guard return is not a leak.
type fallible struct{}

func (f *fallible) AcquireSnapshot() (*snap, error) {
	if cond() {
		return nil, errors.New("no epoch")
	}
	return &snap{pinned: true}, nil
}

func cleanGuarded(f *fallible) (float64, error) {
	s, err := f.AcquireSnapshot()
	if err != nil {
		return 0, err
	}
	defer s.Release()
	return s.Point(3), nil
}

// leakGuardedMidway is guarded but forgets the midway return.
func leakGuardedMidway(f *fallible) (float64, error) {
	s, err := f.AcquireSnapshot() // want `snap pin may reach a return without Release`
	if err != nil {
		return 0, err
	}
	if cond() {
		return 0, errors.New("midway")
	}
	v := s.Point(3)
	s.Release()
	return v, nil
}
