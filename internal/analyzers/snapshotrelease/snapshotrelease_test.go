package snapshotrelease_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/snapshotrelease"
)

func TestSnapshotRelease(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), snapshotrelease.Analyzer, "a")
}
