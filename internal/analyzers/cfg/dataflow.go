package cfg

import "go/ast"

// This file is the fixed-point engine: a generic forward/backward worklist
// solver over a Graph, plus the small set lattice the shiftsplitvet
// analyzers share (may-sets for "could hold on some path", must-sets for
// "holds on every path" — the taint/must-reach pair the lock and lifecycle
// checks are built from).

// A Lattice describes one analysis domain.
type Lattice[S any] interface {
	// Boundary is the state at the analysis boundary: function entry for
	// a forward analysis, function exit for a backward one.
	Boundary() S
	// Bottom is the identity of Join — the initial state of every other
	// block (empty set for may-analyses, the universal set for must).
	Bottom() S
	Join(a, b S) S
	Equal(a, b S) bool
	Clone(a S) S
}

// A Transfer applies one node's effect to the state flowing through it.
type Transfer[S any] func(n ast.Node, state S) S

// Result holds the fixed-point states at each block boundary. For a
// forward analysis In is the state before the block's first node and Out
// the state after its last; for a backward analysis In is the state after
// the block (join over successors) and Out the state before it.
type Result[S any] struct {
	In, Out map[*Block]S
}

// Forward solves a forward dataflow problem to its fixed point.
func Forward[S any](g *Graph, lat Lattice[S], tf Transfer[S]) Result[S] {
	return solve(g, lat, tf, true)
}

// Backward solves a backward dataflow problem to its fixed point.
func Backward[S any](g *Graph, lat Lattice[S], tf Transfer[S]) Result[S] {
	return solve(g, lat, tf, false)
}

func solve[S any](g *Graph, lat Lattice[S], tf Transfer[S], forward bool) Result[S] {
	res := Result[S]{In: make(map[*Block]S), Out: make(map[*Block]S)}
	boundary := g.Entry
	if !forward {
		boundary = g.Exit
	}
	for _, b := range g.Blocks {
		if b == boundary {
			res.In[b] = lat.Boundary()
		} else {
			res.In[b] = lat.Bottom()
		}
		res.Out[b] = applyBlock(b, lat.Clone(res.In[b]), tf, forward)
	}

	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	inWork := make([]bool, len(g.Blocks)+1)
	for i := range inWork {
		inWork[i] = true
	}
	pop := func() *Block {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		return b
	}
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}

	for len(work) > 0 {
		b := pop()
		preds := b.Preds
		deps := b.Succs
		if !forward {
			preds, deps = b.Succs, b.Preds
		}
		in := res.In[b]
		if b != boundary {
			in = lat.Bottom()
			for _, p := range preds {
				in = lat.Join(in, res.Out[p])
			}
		}
		out := applyBlock(b, lat.Clone(in), tf, forward)
		if lat.Equal(in, res.In[b]) && lat.Equal(out, res.Out[b]) {
			continue
		}
		res.In[b], res.Out[b] = in, out
		for _, d := range deps {
			push(d)
		}
	}
	return res
}

func applyBlock[S any](b *Block, state S, tf Transfer[S], forward bool) S {
	if forward {
		for _, n := range b.Nodes {
			state = tf(n, state)
		}
		return state
	}
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		state = tf(b.Nodes[i], state)
	}
	return state
}

// Set is the shared dataflow domain: a set of string facts (lock classes,
// tracked resources, taint marks) with an explicit universal element so the
// same type serves both may- and must-analyses.
type Set struct {
	// Universal marks the must-analysis bottom: the set of all facts.
	Universal bool
	Elems     map[string]bool
}

// NewSet returns a set holding elems.
func NewSet(elems ...string) Set {
	m := make(map[string]bool, len(elems))
	for _, e := range elems {
		m[e] = true
	}
	return Set{Elems: m}
}

// Has reports membership (a universal set has everything).
func (s Set) Has(e string) bool { return s.Universal || s.Elems[e] }

// Empty reports whether the set holds nothing.
func (s Set) Empty() bool { return !s.Universal && len(s.Elems) == 0 }

// Len returns the cardinality; a universal set reports -1.
func (s Set) Len() int {
	if s.Universal {
		return -1
	}
	return len(s.Elems)
}

// With returns a copy including e.
func (s Set) With(e string) Set {
	if s.Universal {
		return s
	}
	out := s.clone()
	out.Elems[e] = true
	return out
}

// Without returns a copy excluding e.
func (s Set) Without(e string) Set {
	if s.Universal {
		// Removing from the universal set only happens once a transfer
		// touches it; materialize as empty-with-note is unsound, so keep
		// universal minus one as just universal (transfer functions in
		// this package only run on reachable states, which are never
		// universal).
		return s
	}
	out := s.clone()
	delete(out.Elems, e)
	return out
}

// Sorted returns the elements in stable order (nil when universal).
func (s Set) Sorted() []string {
	if s.Universal {
		return nil
	}
	out := make([]string, 0, len(s.Elems))
	for e := range s.Elems {
		out = append(out, e)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s Set) clone() Set {
	m := make(map[string]bool, len(s.Elems))
	for e := range s.Elems {
		m[e] = true
	}
	return Set{Universal: s.Universal, Elems: m}
}

func setsEqual(a, b Set) bool {
	if a.Universal != b.Universal {
		return false
	}
	if len(a.Elems) != len(b.Elems) {
		return false
	}
	for e := range a.Elems {
		if !b.Elems[e] {
			return false
		}
	}
	return true
}

// MaySets is the union lattice: a fact holds if it holds on SOME path.
// Boundary and Bottom are both empty.
type MaySets struct{}

func (MaySets) Boundary() Set { return NewSet() }
func (MaySets) Bottom() Set   { return NewSet() }
func (MaySets) Join(a, b Set) Set {
	if a.Universal || b.Universal {
		return Set{Universal: true}
	}
	out := a.clone()
	for e := range b.Elems {
		out.Elems[e] = true
	}
	return out
}
func (MaySets) Equal(a, b Set) bool { return setsEqual(a, b) }
func (MaySets) Clone(a Set) Set     { return a.clone() }

// MustSets is the intersection lattice: a fact holds only if it holds on
// EVERY path. Boundary is empty (nothing holds at entry/exit); Bottom is
// the universal set (join identity).
type MustSets struct{}

func (MustSets) Boundary() Set { return NewSet() }
func (MustSets) Bottom() Set   { return Set{Universal: true} }
func (MustSets) Join(a, b Set) Set {
	if a.Universal {
		return b.clone()
	}
	if b.Universal {
		return a.clone()
	}
	out := NewSet()
	for e := range a.Elems {
		if b.Elems[e] {
			out.Elems[e] = true
		}
	}
	return out
}
func (MustSets) Equal(a, b Set) bool { return setsEqual(a, b) }
func (MustSets) Clone(a Set) Set     { return a.clone() }
