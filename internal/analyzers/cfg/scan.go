package cfg

import "go/ast"

// ScanNode visits the parts of a block node that execute WHEN CONTROL
// PASSES THROUGH THAT NODE, in a CFG-consistent way. It is the walker
// analyzers should use instead of ast.Inspect when sweeping Block.Nodes,
// because a block node can syntactically contain code that the builder
// gave its own blocks (select clause bodies, range bodies) or that runs on
// another schedule entirely (function literals, deferred calls):
//
//   - FuncLit: visited, not descended — a closure's body runs elsewhere;
//     analyze it as its own graph.
//   - SelectStmt: visited, not descended — its comm statements and clause
//     bodies live in the select's clause blocks.
//   - RangeStmt: visited, then only the ranged expression X is descended —
//     key/value and body live in the loop's own blocks.
//   - DeferStmt: visited, then only the call's fun/args are descended as
//     VALUES (a deferred call's effect happens at function exit, and its
//     arguments are evaluated now); the handler decides what a
//     registration means.
//
// visit returning false prunes descent, as with ast.Inspect.
func ScanNode(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			visit(m)
			return false
		case *ast.SelectStmt:
			visit(m)
			return false
		case *ast.RangeStmt:
			if !visit(m) {
				return false
			}
			ScanNode(m.X, visit)
			return false
		case *ast.DeferStmt:
			if !visit(m) {
				return false
			}
			// Argument expressions evaluate at registration time; the
			// call itself does not.
			for _, arg := range m.Call.Args {
				ScanNode(arg, visit)
			}
			return false
		}
		return visit(m)
	})
}
