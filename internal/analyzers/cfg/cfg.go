// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and runs fixed-point dataflow analyses over them — the
// engine beneath the shiftsplitvet analyzers that must see ACROSS
// statements (lockorder, resourceleak), where AST pattern matching cannot.
//
// It is a deliberately small, offline re-implementation of the
// golang.org/x/tools/go/cfg idea on the standard library only, matching the
// repository's no-external-modules rule. The graph is statement-granular:
// each Block holds the ast.Nodes that execute in order when control reaches
// it (statements, plus loop/if condition expressions), and Succs are the
// places control may go next. Function literals nested in a body are NOT
// part of the enclosing graph — analyzers build separate graphs for them,
// because a closure's body runs on its own goroutine's schedule.
//
// panic() and calls that never return are treated as terminating the
// function without reaching Exit: leak- and lock-style analyses deliberately
// reason about ordinary returns, matching how defers are modeled (a
// DeferStmt node guards every exit downstream of its registration).
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first. Exit is the single
	// synthetic block every return (and the fall-off-the-end path)
	// flows to; it holds no nodes.
	Entry, Exit *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block
}

// A Block is a straight-line run of AST nodes with no internal branching.
type Block struct {
	Index int
	// Nodes execute in order: statements, plus the condition expressions
	// of if/for statements (so analyzers see receives in conditions).
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// unreachable marks blocks synthesized for statements that follow a
	// terminating statement (return/break/goto); they have no Preds.
	unreachable bool
}

// New builds the CFG of body. A nil body (declarations without bodies)
// yields a two-block graph with Entry wired straight to Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{}
	b.cur = b.g.Entry
	if body != nil {
		b.stmt(body)
	}
	b.edge(b.cur, b.g.Exit) // fall off the end
	b.patchGotos()
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// Reachable reports whether blk can be reached from Entry.
func (g *Graph) Reachable(blk *Block) bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen[blk.Index]
}

// frame tracks where break and continue jump inside one loop, switch, or
// select statement, and the label (if any) naming it.
type frame struct {
	label      string
	brk, cont  *Block // cont is nil for switch/select frames
	isLoop     bool
	fallTarget *Block // next case body, for fallthrough (switch only)
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	cur    *Block // nil is never stored; unreachable code gets a fresh orphan block
	frames []frame
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel names the next loop/switch built, so `continue L` works.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startUnreachable begins a fresh block with no predecessors, for code
// following a terminating statement.
func (b *builder) startUnreachable() {
	blk := b.newBlock()
	blk.unreachable = true
	b.cur = blk
}

func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// takeLabel consumes the pending label for a loop/switch/select frame.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		post := b.newBlock() // continue target; wired to head below
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.pushFrame(frame{label: label, brk: after, cont: post, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
		}
		b.edge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		// The RangeStmt itself sits in the head so analyzers see the
		// ranged expression (and key/value assignment) once per iteration.
		head.Nodes = append(head.Nodes, s)
		b.edge(b.cur, head)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.pushFrame(frame{label: label, brk: after, cont: head, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.popFrame()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s) // the select node itself: analyzers see "a blocking select happens here"
		sel := b.cur
		after := b.newBlock()
		b.pushFrame(frame{label: label, brk: after})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(sel, blk)
			b.cur = blk
			if clause.Comm != nil {
				b.stmt(clause.Comm)
			}
			for _, st := range clause.Body {
				b.stmt(st)
			}
			b.edge(b.cur, after)
		}
		if len(s.Body.List) == 0 {
			// `select {}` blocks forever: no edge to after.
			after.unreachable = true
		}
		b.popFrame()
		b.cur = after

	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.edge(b.cur, lbl)
		b.cur = lbl
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = lbl
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.startUnreachable()

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(labelName(s)); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.findContinue(labelName(s)); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: labelName(s)})
		case token.FALLTHROUGH:
			if t := b.fallTarget(); t != nil {
				b.edge(b.cur, t)
			}
		}
		b.startUnreachable()

	default:
		// Straight-line statements: assignments, declarations, sends,
		// expression statements, go, defer, inc/dec, empty.
		b.add(s)
	}
}

// switchStmt builds expression and type switches: the head flows to every
// case body (and to after when there is no default); case bodies flow to
// after, or to the next body on fallthrough.
func (b *builder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.stmt(s.Assign)
		body = s.Body
	}
	head := b.cur
	after := b.newBlock()

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cc := range body.List {
		clauses = append(clauses, cc.(*ast.CaseClause))
	}
	blks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blks[i] = b.newBlock()
		b.edge(head, blks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		var fall *Block
		if i+1 < len(blks) {
			fall = blks[i+1]
		}
		b.pushFrame(frame{label: label, brk: after, fallTarget: fall})
		b.cur = blks[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
		b.popFrame()
	}
	b.cur = after
}

func (b *builder) pushFrame(f frame) { b.frames = append(b.frames, f) }
func (b *builder) popFrame()         { b.frames = b.frames[:len(b.frames)-1] }

func labelName(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

func (b *builder) findBreak(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.brk
		}
	}
	return nil
}

func (b *builder) findContinue(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f.cont
		}
	}
	return nil
}

func (b *builder) fallTarget() *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].fallTarget != nil || b.frames[i].brk != nil {
			return b.frames[i].fallTarget
		}
	}
	return nil
}

// patchGotos wires goto edges once every label block exists.
func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t)
		}
	}
}
