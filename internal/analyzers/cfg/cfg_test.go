package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src (a file fragment containing one function f) and
// returns the CFG of f's body.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return New(fn.Body)
}

// callNames walks the graph and returns, per block index, the names of
// functions called in that block (idents only).
func callNames(g *Graph) map[string]int {
	out := make(map[string]int)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						out[id.Name] = b.Index
					}
				}
				return true
			})
		}
	}
	return out
}

func TestStraightLineReachesExit(t *testing.T) {
	g := buildFunc(t, "a(); b()")
	if !g.Reachable(g.Exit) {
		t.Fatal("exit unreachable in straight-line code")
	}
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry block has %d nodes, want 2", len(g.Entry.Nodes))
	}
}

func TestIfJoins(t *testing.T) {
	g := buildFunc(t, "if c() { a() } else { b() }\nd()")
	names := callNames(g)
	if names["a"] == names["b"] {
		t.Fatal("then and else share a block")
	}
	// d's block must be a successor of both branches.
	dBlk := g.Blocks[names["d"]]
	if len(dBlk.Preds) != 2 {
		t.Fatalf("join block has %d preds, want 2", len(dBlk.Preds))
	}
}

func TestInfiniteLoopDoesNotReachExit(t *testing.T) {
	g := buildFunc(t, "for { a() }")
	if g.Reachable(g.Exit) {
		t.Fatal("for{} should not reach exit")
	}
	g = buildFunc(t, "for { if c() { break }; a() }")
	if !g.Reachable(g.Exit) {
		t.Fatal("loop with break must reach exit")
	}
}

func TestForLoopHasBackEdge(t *testing.T) {
	g := buildFunc(t, "for i := 0; i < n; i++ { a() }\nb()")
	if !g.Reachable(g.Exit) {
		t.Fatal("bounded loop must reach exit")
	}
	names := callNames(g)
	aBlk := g.Blocks[names["a"]]
	// From a's block we must be able to get back to a's block (the loop).
	seen := make(map[*Block]bool)
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if s == aBlk || walk(s) {
				return true
			}
		}
		return false
	}
	if !walk(aBlk) {
		t.Fatal("no back edge to loop body")
	}
}

func TestReturnCutsFlow(t *testing.T) {
	g := buildFunc(t, "a(); return\nb()")
	names := callNames(g)
	bBlk := g.Blocks[names["b"]]
	if g.Reachable(bBlk) {
		t.Fatal("code after return must be unreachable")
	}
}

func TestSelectFansOut(t *testing.T) {
	g := buildFunc(t, "select {\ncase <-c1:\n\ta()\ncase <-c2:\n\tb()\n}\nd()")
	names := callNames(g)
	if names["a"] == names["b"] {
		t.Fatal("select clauses share a block")
	}
	dBlk := g.Blocks[names["d"]]
	if len(dBlk.Preds) != 2 {
		t.Fatalf("post-select block has %d preds, want 2", len(dBlk.Preds))
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	// Without default, the head can skip every case.
	g := buildFunc(t, "switch x() {\ncase 1:\n\ta()\n}\nd()")
	names := callNames(g)
	dBlk := g.Blocks[names["d"]]
	if len(dBlk.Preds) != 2 { // case body + head skip edge
		t.Fatalf("post-switch block has %d preds, want 2", len(dBlk.Preds))
	}
	// Fallthrough chains case bodies.
	g = buildFunc(t, "switch x() {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\n}")
	names = callNames(g)
	aBlk, bBlk := g.Blocks[names["a"]], g.Blocks[names["b"]]
	found := false
	for _, s := range aBlk.Succs {
		if s == bBlk {
			found = true
		}
	}
	if !found {
		t.Fatal("fallthrough edge missing")
	}
}

func TestLabeledContinueAndGoto(t *testing.T) {
	g := buildFunc(t, "outer:\nfor {\n\tfor {\n\t\tcontinue outer\n\t}\n}")
	if g.Reachable(g.Exit) {
		t.Fatal("labeled continue loop must not reach exit")
	}
	g = buildFunc(t, "a()\ngoto done\nb()\ndone:\nc()")
	names := callNames(g)
	if g.Reachable(g.Blocks[names["b"]]) {
		t.Fatal("statement jumped over by goto must be unreachable")
	}
	if !g.Reachable(g.Blocks[names["c"]]) {
		t.Fatal("goto target must be reachable")
	}
}

// lockTransfer is a toy transfer for the dataflow tests: lock()/unlock()
// calls add and remove the fact "L".
func lockTransfer(n ast.Node, s Set) Set {
	out := s
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "lock":
				out = out.With("L")
			case "unlock":
				out = out.Without("L")
			}
		}
		return true
	})
	return out
}

func TestForwardMustHeld(t *testing.T) {
	// The lock is held at a() only when acquired on every path in.
	g := buildFunc(t, "if c() { lock() } else { lock() }\na()\nunlock()")
	res := Forward[Set](g, MustSets{}, lockTransfer)
	names := callNames(g)
	aBlk := g.Blocks[names["a"]]
	if !res.In[aBlk].Has("L") {
		t.Fatal("must-analysis should prove L held at a()")
	}

	// Acquired on only one path: not must-held.
	g = buildFunc(t, "if c() { lock() }\na()\nunlock()")
	res = Forward[Set](g, MustSets{}, lockTransfer)
	names = callNames(g)
	aBlk = g.Blocks[names["a"]]
	if res.In[aBlk].Has("L") {
		t.Fatal("must-analysis must not claim L held after a conditional lock")
	}
}

func TestForwardMayHeldAtExit(t *testing.T) {
	// One path leaks the lock: may-analysis sees it at exit.
	g := buildFunc(t, "lock()\nif c() { return }\nunlock()")
	res := Forward[Set](g, MaySets{}, lockTransfer)
	if !res.In[g.Exit].Has("L") {
		t.Fatal("may-analysis should see the leaked lock at exit")
	}
	// Balanced on all paths: clean at exit.
	g = buildFunc(t, "lock()\nif c() { unlock(); return }\nunlock()")
	res = Forward[Set](g, MaySets{}, lockTransfer)
	if res.In[g.Exit].Has("L") {
		t.Fatal("balanced lock should not be held at exit")
	}
}

func TestBackwardMustReach(t *testing.T) {
	// release() reaches every exit from the creation point only when
	// both branches release.
	tf := func(n ast.Node, s Set) Set {
		out := s
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "release" {
					out = out.With("R")
				}
			}
			return true
		})
		return out
	}
	g := buildFunc(t, "create()\nif c() { release(); return }\nrelease()")
	res := Backward[Set](g, MustSets{}, tf)
	names := callNames(g)
	createBlk := g.Blocks[names["create"]]
	if !res.Out[createBlk].Has("R") {
		t.Fatal("release on both paths should be must-reached from create")
	}
	g = buildFunc(t, "create()\nif c() { return }\nrelease()")
	res = Backward[Set](g, MustSets{}, tf)
	names = callNames(g)
	createBlk = g.Blocks[names["create"]]
	if res.Out[createBlk].Has("R") {
		t.Fatal("early return without release must break must-reach")
	}
}
