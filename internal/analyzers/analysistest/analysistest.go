// Package analysistest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against "// want" comments,
// following the protocol of golang.org/x/tools/go/analysis/analysistest:
//
//	st.WriteBlock(0, buf) // want `bypasses the maintenance journal`
//
// Each want comment holds one or more Go string literals (quoted or
// backquoted), each a regular expression that must match the message of a
// distinct diagnostic reported on that line. Diagnostics with no matching
// want, and wants with no matching diagnostic, fail the test.
//
// Fixture layout: dir/src is a real Go module (its go.mod replaces the
// shiftsplit module with a relative path, so fixtures exercise the real
// storage and tile types), and patterns name packages inside it ("a"
// loads ./a).
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/load"
)

// TestData returns the caller's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

type wantKey struct {
	file string // base name
	line int
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each pattern from dir/src and applies a, comparing diagnostics
// to the golden wants.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	rel := make([]string, len(patterns))
	for i, p := range patterns {
		rel[i] = "./" + p
	}
	pkgs, err := load.Load(load.Config{Dir: filepath.Join(dir, "src")}, rel...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v", patterns)
	}
	// One fact store spans the whole Run, and load returns packages in
	// dependency order, so fixtures exercise cross-package facts exactly
	// the way the multichecker does.
	facts := analysis.NewFacts()
	for _, pkg := range pkgs {
		runOne(t, a, pkg, facts)
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, pkg *load.Package, facts *analysis.Facts) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	}).WithFacts(facts)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg.PkgPath, a.Name, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("%s: %v", pkg.PkgPath, err)
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := wantKey{filepath.Base(pos.Filename), pos.Line}
		if !consume(wants[key], d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.raw)
			}
		}
	}
}

// consume marks the first unmatched want whose regexp matches msg.
func consume(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses the "// want" comments of every file in pkg.
func collectWants(pkg *load.Package) (map[wantKey][]*want, error) {
	out := make(map[wantKey][]*want)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ws, err := parseWants(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				key := wantKey{filepath.Base(pos.Filename), pos.Line}
				out[key] = append(out[key], ws...)
			}
		}
	}
	return out, nil
}

// parseWants reads a sequence of Go string literals, each one regexp.
func parseWants(s string) ([]*want, error) {
	var out []*want
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		lit, rest, err := quotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("malformed want pattern %q: %v", s, err)
		}
		raw, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquote %s: %v", lit, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("compile %q: %v", raw, err)
		}
		out = append(out, &want{re: re, raw: raw})
		s = rest
	}
}

// quotedPrefix splits off the leading quoted or backquoted literal.
func quotedPrefix(s string) (lit, rest string, err error) {
	lit, err = strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	return lit, s[len(lit):], nil
}

// Positions is a debugging helper: it renders diagnostics as
// "file:line: message" lines (used by driver tests).
func Positions(fset *token.FileSet, diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		pos := fset.Position(d.Pos)
		out[i] = fmt.Sprintf("%s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
	}
	return out
}
