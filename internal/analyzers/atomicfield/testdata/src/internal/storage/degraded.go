// Package storage carries atomicfield's seeded regression: the
// degraded-mode flag race. The scrubber set the flag with an atomic store,
// but the hot read path loaded it plainly — a data race the -race suite
// only caught under a lucky interleaving (PR 6). The repaired code loads
// atomically; production code now uses atomic.Bool so the compiler
// enforces it.
package storage

import "sync/atomic"

type state struct {
	degraded uint32
}

func (s *state) markDegraded() { atomic.StoreUint32(&s.degraded, 1) }

// serveBroken is the pre-repair read path.
func (s *state) serveBroken() bool {
	return s.degraded == 1 // want `plain access to .*state\.degraded`
}

// serve is the repaired read path.
func (s *state) serve() bool {
	return atomic.LoadUint32(&s.degraded) == 1
}
