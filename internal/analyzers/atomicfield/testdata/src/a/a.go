// Package a exercises the same-package atomicfield rules.
package a

import "sync/atomic"

type C struct {
	flag uint32
	n    int64
	ok   uint32 // never touched atomically: plain access is fine
	hits atomic.Int64
}

func (c *C) set() { atomic.StoreUint32(&c.flag, 1) }

func (c *C) get() bool { return atomic.LoadUint32(&c.flag) == 1 }

func (c *C) bad() bool { return c.flag == 1 } // want `plain access to .*C\.flag`

func (c *C) add() { atomic.AddInt64(&c.n, 1) }

func (c *C) write() { c.n = 0 } // want `plain access to .*C\.n`

func (c *C) plainOnly() { c.ok = 1 }

// fresh initializes by composite literal: the key is a bare identifier,
// not an access, and must not be flagged.
func fresh() *C { return &C{flag: 0, n: 0} }

// typed uses the compiler-enforced wrapper — the fix the analyzer steers
// toward; method calls on it are not plain accesses of an atomic scalar.
func (c *C) typed() int64 { return c.hits.Add(1) }
