// Package xa is the upstream side of the cross-package test: it accesses
// Gate.Flag atomically, which exports the field's atomic fact.
package xa

import "sync/atomic"

type Gate struct {
	Flag uint32
}

func (g *Gate) Raise() { atomic.StoreUint32(&g.Flag, 1) }

func (g *Gate) Raised() bool { return atomic.LoadUint32(&g.Flag) == 1 }
