// Package ya reads an upstream atomic field plainly; the violation is
// only visible through xa's exported fact.
package ya

import "github.com/shiftsplit/shiftsplit/vettest/xa"

func Check(g *xa.Gate) bool {
	return g.Flag == 1 // want `plain access to .*Gate\.Flag`
}

func CheckRight(g *xa.Gate) bool {
	return g.Raised()
}
