// Package atomicfield enforces all-or-nothing atomicity per field: a
// struct field that any code accesses through sync/atomic may never be
// read or written plainly. A single plain load of such a field is a data
// race — the exact race the degraded-mode flag shipped with before it
// moved to atomic.Bool — and the racy read is legal-looking enough to
// survive review, so the rule is mechanical.
//
// The field set is collected per package and exported as facts keyed by
// the field's stable "pkg.Owner.field" key, so a dependent package reading
// an upstream field plainly is caught even though the atomic accesses live
// upstream. Composite-literal initialization (S{flag: 0}) is not a
// concurrent access and never matches: literal keys are bare identifiers,
// not selector accesses.
//
// The sanctioned fix is either routing every access through sync/atomic or
// — better — giving the field a typed wrapper (atomic.Int64, atomic.Bool)
// so the compiler enforces what this analyzer checks.
package atomicfield

import (
	"go/ast"
	"go/token"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed via sync/atomic everywhere",
	Run:  run,
}

// atomicFact marks one field as atomically accessed; exported under the
// field's FieldKey.
type atomicFact struct{}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: find every &x.f handed to a sync/atomic call. The selector
	// nodes themselves are sanctioned accesses.
	local := make(map[string]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := vetutil.Callee(info, call)
			if fn == nil || vetutil.DeclPkgPath(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if key, ok := vetutil.FieldKey(info, sel); ok {
					local[key] = true
					sanctioned[sel] = true
					pass.ExportFact(key, atomicFact{})
				}
			}
			return true
		})
	}

	// Pass 2: every other selector that resolves to an atomic field — local
	// or imported-fact — is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			key, ok := vetutil.FieldKey(info, sel)
			if !ok {
				return true
			}
			atomic := local[key]
			if !atomic {
				_, atomic = pass.ImportFact(key)
			}
			if atomic {
				pass.Reportf(sel.Pos(),
					"plain access to %s, which is accessed with sync/atomic elsewhere; every access must go through sync/atomic (or make the field a typed atomic.Int64/atomic.Bool)",
					key)
			}
			return true
		})
	}
	return nil
}
