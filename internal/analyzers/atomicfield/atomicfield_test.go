package atomicfield_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "a")
}

// TestAtomicFieldCrossPackage drives the facts path: xa marks Gate.Flag
// atomic; ya's plain read of it is caught through the imported fact.
func TestAtomicFieldCrossPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "xa", "ya")
}

// TestAtomicFieldDegradedRegression is the seeded regression: the
// degraded-mode flag read plainly on the serve path while the scrub path
// stored it atomically (the PR 6 race, caught statically).
func TestAtomicFieldDegradedRegression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "internal/storage")
}
