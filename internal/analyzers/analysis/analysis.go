// Package analysis is the vocabulary of the shiftsplitvet lint suite: a
// deliberately small, offline re-implementation of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic) built
// only on the standard library, because this repository vendors no external
// modules. Analyzers written against it look and read like stock go/analysis
// checkers, and the accompanying analysistest package runs the same
// "// want" golden-comment protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check: a name, a doc string, and a Run function
// applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //shiftsplitvet:ignore comments. By convention it is a single
	// lowercase word.
	Name string
	// Doc is the analyzer's documentation; the first line is its summary.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one application of one analyzer to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts  *Facts
	report func(Diagnostic)
}

// Facts is the cross-package side channel of one checker run: analyzers
// export summaries (e.g. "this function acquires these locks") keyed by
// stable strings while analyzing a package, and import them when analyzing
// its dependents. The driver hands the same Facts to every pass and loads
// packages in dependency order, so a dependency's facts are always present
// before its importers are analyzed.
//
// Keys are analyzer-namespaced automatically; analyzers only agree with
// themselves. Keys must be position-independent and stable across
// source/export-data views of a package — by convention
// "pkgpath.Type.Member" or "pkgpath.Func" (see vetutil for helpers) —
// because a dependency analyzed from source and later imported from export
// data yields distinct go/types objects for the same entity.
type Facts struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	key      string
}

// NewFacts returns an empty fact store for one checker run.
func NewFacts() *Facts { return &Facts{m: make(map[factKey]any)} }

// WithFacts attaches a fact store to the pass and returns it.
func (p *Pass) WithFacts(f *Facts) *Pass {
	p.facts = f
	return p
}

// ExportFact records fact under key for this analyzer. Without an attached
// fact store (single-package analysistest runs construct one implicitly via
// the driver) it is a no-op.
func (p *Pass) ExportFact(key string, fact any) {
	if p.facts == nil {
		return
	}
	p.facts.m[factKey{p.Analyzer.Name, key}] = fact
}

// ImportFact looks up the fact stored under key by this analyzer in an
// earlier pass and returns it (nil, false when absent).
func (p *Pass) ImportFact(key string) (any, bool) {
	if p.facts == nil {
		return nil, false
	}
	v, ok := p.facts.m[factKey{p.Analyzer.Name, key}]
	return v, ok
}

// NewPass binds an analyzer to a package; sink receives the diagnostics.
// Diagnostics on lines carrying a //shiftsplitvet:ignore comment naming the
// analyzer (or naming nothing, which suppresses every analyzer) are dropped
// before they reach the sink.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink func(Diagnostic)) *Pass {
	ignored := ignoreIndex(fset, files)
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report: func(d Diagnostic) {
			if d.Analyzer == nil {
				d.Analyzer = a
			}
			pos := fset.Position(d.Pos)
			if names, ok := ignored[lineKey{pos.Filename, pos.Line}]; ok {
				if len(names) == 0 {
					return
				}
				for _, n := range names {
					if n == d.Analyzer.Name {
						return
					}
				}
			}
			sink(d)
		},
	}
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IgnoreDirective is the comment prefix that suppresses diagnostics on the
// line it appears on and the line directly below it (so it works both as a
// trailing comment and as a guard above the offending statement):
//
//	//shiftsplitvet:ignore storageerr -- crash injection discards on purpose
//
// Analyzer names are optional; with none given, every analyzer is silenced.
const IgnoreDirective = "//shiftsplitvet:ignore"

type lineKey struct {
	file string
	line int
}

// ignoreIndex maps source lines to the analyzer names suppressed on them.
// An empty name list means "suppress everything".
func ignoreIndex(fset *token.FileSet, files []*ast.File) map[lineKey][]string {
	idx := make(map[lineKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				if reason := strings.Index(rest, "--"); reason >= 0 {
					rest = rest[:reason]
				}
				names := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				idx[lineKey{pos.Filename, pos.Line}] = names
				idx[lineKey{pos.Filename, pos.Line + 1}] = names
			}
		}
	}
	return idx
}
