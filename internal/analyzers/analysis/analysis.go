// Package analysis is the vocabulary of the shiftsplitvet lint suite: a
// deliberately small, offline re-implementation of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic) built
// only on the standard library, because this repository vendors no external
// modules. Analyzers written against it look and read like stock go/analysis
// checkers, and the accompanying analysistest package runs the same
// "// want" golden-comment protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check: a name, a doc string, and a Run function
// applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //shiftsplitvet:ignore comments. By convention it is a single
	// lowercase word.
	Name string
	// Doc is the analyzer's documentation; the first line is its summary.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one application of one analyzer to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// NewPass binds an analyzer to a package; sink receives the diagnostics.
// Diagnostics on lines carrying a //shiftsplitvet:ignore comment naming the
// analyzer (or naming nothing, which suppresses every analyzer) are dropped
// before they reach the sink.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink func(Diagnostic)) *Pass {
	ignored := ignoreIndex(fset, files)
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report: func(d Diagnostic) {
			if d.Analyzer == nil {
				d.Analyzer = a
			}
			pos := fset.Position(d.Pos)
			if names, ok := ignored[lineKey{pos.Filename, pos.Line}]; ok {
				if len(names) == 0 {
					return
				}
				for _, n := range names {
					if n == d.Analyzer.Name {
						return
					}
				}
			}
			sink(d)
		},
	}
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IgnoreDirective is the comment prefix that suppresses diagnostics on the
// line it appears on and the line directly below it (so it works both as a
// trailing comment and as a guard above the offending statement):
//
//	//shiftsplitvet:ignore storageerr -- crash injection discards on purpose
//
// Analyzer names are optional; with none given, every analyzer is silenced.
const IgnoreDirective = "//shiftsplitvet:ignore"

type lineKey struct {
	file string
	line int
}

// ignoreIndex maps source lines to the analyzer names suppressed on them.
// An empty name list means "suppress everything".
func ignoreIndex(fset *token.FileSet, files []*ast.File) map[lineKey][]string {
	idx := make(map[lineKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				if reason := strings.Index(rest, "--"); reason >= 0 {
					rest = rest[:reason]
				}
				names := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				idx[lineKey{pos.Filename, pos.Line}] = names
				idx[lineKey{pos.Filename, pos.Line + 1}] = names
			}
		}
	}
	return idx
}
