package scratchescape_test

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysistest"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/scratchescape"
)

func TestScratchEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), scratchescape.Analyzer, "a", "b")
}
