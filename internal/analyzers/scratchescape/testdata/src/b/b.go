// Package b exercises the worker-pool rule of the scratchescape analyzer:
// a closure handed to internal/parallel runs on worker goroutines, so
// capturing a pooled buffer there races the pool just like a go statement.
package b

import (
	"sync"

	"github.com/shiftsplit/shiftsplit/internal/parallel"
)

var pool = sync.Pool{New: func() any { b := make([]float64, 64); return &b }}

func fanOutCaptured(n int) error {
	bp := pool.Get().(*[]float64)
	defer pool.Put(bp)
	b := *bp
	return parallel.Run(n, parallel.Options{},
		func(seq int) (float64, error) {
			return b[seq], nil // want `pooled scratch buffer b is captured by a closure handed to the parallel worker pool`
		},
		func(seq int, v float64) error { return nil })
}

func fanOutCopied(n int) error {
	bp := pool.Get().(*[]float64)
	c := append([]float64(nil), (*bp)...)
	pool.Put(bp)
	// The closure owns its own copy: no finding.
	return parallel.Run(n, parallel.Options{},
		func(seq int) (float64, error) { return c[seq], nil },
		func(seq int, v float64) error { return nil })
}

func consumeOnCaller(n int) error {
	bp := pool.Get().(*[]float64)
	defer pool.Put(bp)
	b := *bp
	// consume runs on the calling goroutine, but the analyzer cannot tell
	// the stages apart and the buffer still outlives individual calls, so
	// capturing scratch in any worker-pool closure is flagged.
	return parallel.Run(n, parallel.Options{},
		func(seq int) (float64, error) { return 0, nil },
		func(seq int, v float64) error {
			b[seq] = v // want `pooled scratch buffer b is captured by a closure handed to the parallel worker pool`
			return nil
		})
}
