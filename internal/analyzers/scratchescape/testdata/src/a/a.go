// Package a exercises the scratchescape analyzer: buffers drawn from a
// sync.Pool must not outlive the call that drew them.
package a

import "sync"

var pool = sync.Pool{New: func() any { b := make([]float64, 64); return &b }}

type holder struct {
	buf []float64
}

var global []float64

func returned() []float64 {
	bp := pool.Get().(*[]float64)
	defer pool.Put(bp)
	b := *bp
	return b // want `pooled scratch buffer is returned`
}

func stored(h *holder) {
	bp := pool.Get().(*[]float64)
	h.buf = *bp // want `pooled scratch buffer is stored in a field`
	pool.Put(bp)
}

func sent(ch chan []float64) {
	bp := pool.Get().(*[]float64)
	ch <- *bp // want `pooled scratch buffer is sent on a channel`
	pool.Put(bp)
}

func captured() {
	bp := pool.Get().(*[]float64)
	b := *bp
	go process(b) // want `pooled scratch buffer b is shared with a goroutine`
	pool.Put(bp)
}

func pkgVar() {
	bp := pool.Get().(*[]float64)
	global = (*bp)[:8] // want `stored in a package variable`
	pool.Put(bp)
}

func element(m map[int][]float64) {
	bp := pool.Get().(*[]float64)
	m[0] = *bp // want `stored in a container element`
	pool.Put(bp)
}

func good(dst []float64) float64 {
	bp := pool.Get().(*[]float64)
	defer pool.Put(bp)
	b := *bp
	copy(dst, b) // handing scratch to an ordinary call is the intended use
	return b[0]  // reading one element copies a scalar out
}

func process([]float64) {}
