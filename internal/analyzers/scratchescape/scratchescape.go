// Package scratchescape flags pooled scratch buffers that outlive their
// pool slot.
//
// The concurrent read path of PR 2 is allocation-free because FileStore and
// tile.Store draw per-call scratch from sync.Pools (getScratch/getBuf) and
// Put it back on return. That is only sound while the buffer's lifetime is
// bracketed by the call: a pooled buffer that is returned, parked in a
// struct field, sent on a channel, or captured by a goroutine will be
// recycled while still referenced, and two queriers end up decoding
// coefficients through the same bytes — silent cross-request corruption
// that -race cannot always see (the pool hand-off is synchronized; the
// use-after-Put is not).
//
// Within each function the analyzer tracks values originating from
// (*sync.Pool).Get — directly or through the repo's getBuf/getScratch
// helpers — together with their intra-function aliases (y := x, b := *bp,
// s := b[:n]). It reports when an alias is returned, assigned to anything
// non-local (struct field, map/slice element, package variable), sent on a
// channel, or referenced from a go statement. Reading one element (b[i])
// and passing the buffer to an ordinary call (copy, ReadBlock) are the
// intended uses and stay silent.
package scratchescape

import (
	"go/ast"
	"go/types"

	"github.com/shiftsplit/shiftsplit/internal/analyzers/analysis"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/vetutil"
)

// Analyzer is the scratchescape check.
var Analyzer = &analysis.Analyzer{
	Name: "scratchescape",
	Doc:  "flag pooled scratch buffers that escape their call (returned, stored, or captured by a goroutine)",
	Run:  run,
}

// pooledHelpers are repo-local methods that hand out pooled scratch.
var pooledHelpers = map[string]bool{
	"getBuf":     true,
	"getScratch": true,
	"getRunBuf":  true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pooledHelpers[fd.Name.Name] {
				continue // the hand-out helpers return pooled scratch by design
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	pooled := collectPooled(pass, body)
	if len(pooled) == 0 {
		return
	}
	v := &visitor{pass: pass, pooled: pooled}
	ast.Inspect(body, v.visit)
}

// collectPooled walks the function body once, in source order, building the
// set of objects that alias pooled scratch.
func collectPooled(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	pooled := make(map[types.Object]bool)
	// Iterate to a fixed point so aliases declared before later re-aliases
	// are caught regardless of statement order (cheap: bodies are small).
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) == 0 || len(as.Rhs) == 0 {
				return true
			}
			// b, ok := pool.Get().(*[]float64) has 2 LHS, 1 RHS; only the
			// first LHS receives the buffer.
			rhs := as.Rhs[0]
			if len(as.Lhs) != len(as.Rhs) && len(as.Rhs) != 1 {
				return true
			}
			for i, lhs := range as.Lhs {
				src := rhs
				if len(as.Lhs) == len(as.Rhs) {
					src = as.Rhs[i]
				} else if i > 0 {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || pooled[obj] {
					continue
				}
				if pooledSource(pass, pooled, src) {
					pooled[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return pooled
		}
	}
}

// pooledSource reports whether expr yields (an alias of) pooled scratch:
// a sync.Pool Get, a getBuf/getScratch helper call, or a deref/slice/paren
// of an already-pooled variable. A type assertion over any of these is
// looked through.
func pooledSource(pass *analysis.Pass, pooled map[types.Object]bool, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		return isPoolGet(pass, e) || isPooledHelper(pass, e)
	case *ast.TypeAssertExpr:
		return pooledSource(pass, pooled, e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return pooledSource(pass, pooled, e.X)
		}
		return false
	case *ast.StarExpr:
		return pooledSource(pass, pooled, e.X)
	case *ast.SliceExpr:
		return pooledSource(pass, pooled, e.X)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && pooled[obj]
	default:
		return false
	}
}

// isPoolGet matches x.Get() where x is a sync.Pool or *sync.Pool.
func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	name, ok := vetutil.NamedIn(tv.Type, "sync")
	return ok && name == "Pool"
}

// isPooledHelper matches the repository's scratch-handout helpers.
func isPooledHelper(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := vetutil.Callee(pass.TypesInfo, call)
	return fn != nil && pooledHelpers[fn.Name()]
}

type visitor struct {
	pass   *analysis.Pass
	pooled map[types.Object]bool
}

func (v *visitor) visit(n ast.Node) bool {
	switch stmt := n.(type) {
	case *ast.ReturnStmt:
		for _, res := range stmt.Results {
			if v.aliases(res) {
				v.pass.Reportf(res.Pos(), "pooled scratch buffer is returned; it will be recycled while the caller still holds it — copy it (or allocate) instead")
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range stmt.Lhs {
			if i >= len(stmt.Rhs) && len(stmt.Rhs) != 1 {
				break
			}
			rhs := stmt.Rhs[0]
			if len(stmt.Lhs) == len(stmt.Rhs) {
				rhs = stmt.Rhs[i]
			}
			if !v.aliases(rhs) {
				continue
			}
			switch target := ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr:
				v.pass.Reportf(stmt.Pos(), "pooled scratch buffer is stored in a field; it outlives the call and will be recycled under the holder — copy it instead")
			case *ast.IndexExpr:
				v.pass.Reportf(stmt.Pos(), "pooled scratch buffer is stored in a container element; it outlives the call — copy it instead")
			case *ast.Ident:
				if obj := v.objOf(target); obj != nil && isPackageLevel(obj) {
					v.pass.Reportf(stmt.Pos(), "pooled scratch buffer is stored in a package variable; it outlives the call — copy it instead")
				}
			}
		}
	case *ast.SendStmt:
		if v.aliases(stmt.Value) {
			v.pass.Reportf(stmt.Value.Pos(), "pooled scratch buffer is sent on a channel; the receiver races the pool — copy it instead")
		}
	case *ast.GoStmt:
		v.checkGo(stmt)
		return false // reported wholesale; don't descend and double-report
	case *ast.CallExpr:
		if v.checkParallelCall(stmt) {
			return false // same wholesale treatment as a go statement
		}
	}
	return true
}

// checkParallelCall treats function literals handed to the worker-pool
// package like go statements: parallel.Run executes its produce closure on
// worker goroutines, so a pooled buffer captured by (or passed through) such
// a closure races the pool exactly as a direct goroutine capture would. It
// reports pooled identifiers inside function-literal arguments of calls into
// internal/parallel and returns whether the call was one.
func (v *visitor) checkParallelCall(call *ast.CallExpr) bool {
	fn := vetutil.Callee(v.pass.TypesInfo, call)
	if fn == nil || !vetutil.HasPathSuffix(vetutil.DeclPkgPath(fn), "internal/parallel") {
		return false
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := v.pass.TypesInfo.Uses[id]
			if obj != nil && v.pooled[obj] {
				v.pass.Reportf(id.Pos(), "pooled scratch buffer %s is captured by a closure handed to the parallel worker pool; it runs on another goroutine and races the pool's next Get — give it a copy", id.Name)
			}
			return true
		})
	}
	return true
}

// checkGo reports pooled buffers referenced anywhere in a go statement:
// captured by the function literal or passed as an argument.
func (v *visitor) checkGo(g *ast.GoStmt) {
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := v.pass.TypesInfo.Uses[id]
		if obj != nil && v.pooled[obj] {
			v.pass.Reportf(id.Pos(), "pooled scratch buffer %s is shared with a goroutine; the goroutine races the pool's next Get — give it a copy", id.Name)
		}
		return true
	})
}

// aliases reports whether expr evaluates to (a view of) a pooled buffer:
// the variable itself, a deref, or a reslice. Reading a single element
// (b[i]) copies a scalar and is fine.
func (v *visitor) aliases(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := v.pass.TypesInfo.Uses[e]
		return obj != nil && v.pooled[obj]
	case *ast.StarExpr:
		return v.aliases(e.X)
	case *ast.SliceExpr:
		return v.aliases(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() == "&" && v.aliases(e.X)
	default:
		return false
	}
}

func (v *visitor) objOf(id *ast.Ident) types.Object {
	if obj := v.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return v.pass.TypesInfo.Defs[id]
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}
