// Package load turns Go package patterns into parsed, type-checked
// packages for the shiftsplitvet analyzers, using only the standard
// library and the go tool itself.
//
// It works the way gopls' loader does in miniature: `go list -export -deps`
// enumerates the target packages and compiles their dependencies, and each
// target is then parsed from source and type-checked with go/types, with
// every import satisfied from the compiler's export data. That keeps the
// loader fully offline (no golang.org/x/tools dependency) while still
// giving analyzers complete type information, including for imports of the
// main module from analyzer test fixtures.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked target package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Files     []string // absolute paths of the non-test Go sources
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Config adjusts where and how packages are loaded.
type Config struct {
	// Dir is the working directory for the go tool; "" means the current
	// directory. Analyzer tests point it at a testdata module.
	Dir string
}

// listedPackage mirrors the fields of `go list -json` this loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") to packages and type-checks each.
// Test files are not analyzed: the lint invariants guard production code,
// and tests routinely violate them on purpose to prove error paths.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(cfg.Dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(listed))
	var roots []*listedPackage
	for _, p := range listed {
		byPath[p.ImportPath] = p
		if !p.DepOnly && len(p.GoFiles) > 0 {
			roots = append(roots, p)
		}
	}
	sortRoots(roots)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("load: no export data for %q (does it compile?)", path)
		}
		return os.Open(p.Export)
	})

	var out []*Package
	for _, root := range roots {
		if root.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", root.ImportPath, root.Error.Err)
		}
		pkg, err := check(fset, imp, root)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses root's sources and type-checks them against export data.
func check(fset *token.FileSet, imp types.Importer, root *listedPackage) (*Package, error) {
	var syntax []*ast.File
	var files []string
	for _, name := range root.GoFiles {
		path := filepath.Join(root.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %w", path, err)
		}
		syntax = append(syntax, f)
		files = append(files, path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(root.ImportPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", root.ImportPath, err)
	}
	return &Package{
		PkgPath:   root.ImportPath,
		Name:      root.Name,
		Dir:       root.Dir,
		Files:     files,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// sortRoots orders the target packages in dependency order (a package
// after everything it imports), with import-path order breaking ties, so
// cross-package analyzer facts are always exported before they are needed.
func sortRoots(roots []*listedPackage) {
	byPath := make(map[string]*listedPackage, len(roots))
	for _, r := range roots {
		byPath[r.ImportPath] = r
	}
	indegree := make(map[string]int, len(roots))
	dependents := make(map[string][]string, len(roots))
	for _, r := range roots {
		indegree[r.ImportPath] += 0
		for _, imp := range r.Imports {
			if _, ok := byPath[imp]; ok {
				indegree[r.ImportPath]++
				dependents[imp] = append(dependents[imp], r.ImportPath)
			}
		}
	}
	var ready []string
	for path, d := range indegree {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	var order []*listedPackage
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		order = append(order, byPath[path])
		changed := false
		for _, dep := range dependents[path] {
			indegree[dep]--
			if indegree[dep] == 0 {
				ready = append(ready, dep)
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	// Import cycles cannot happen in compiling Go; if go list handed us
	// one anyway, keep the stragglers in path order rather than dropping
	// them.
	if len(order) < len(roots) {
		in := make(map[string]bool, len(order))
		for _, r := range order {
			in[r.ImportPath] = true
		}
		var rest []*listedPackage
		for _, r := range roots {
			if !in[r.ImportPath] {
				rest = append(rest, r)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].ImportPath < rest[j].ImportPath })
		order = append(order, rest...)
	}
	copy(roots, order)
}

// goList runs `go list -e -export -deps -json` over patterns. CGO is
// disabled so every listed package (including net) is pure Go and carries
// export data, and GOWORK is off so a surrounding workspace file cannot
// change what a testdata module resolves to.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Export,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		q := p
		out = append(out, &q)
	}
	return out, nil
}
