package shiftsplit

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

func crashSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("SHIFTSPLIT_CRASH_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SHIFTSPLIT_CRASH_SEED %q: %v", s, err)
		}
		return n
	}
	return 1
}

// equalExact compares two transforms coefficient-for-coefficient, no
// tolerance: recovery must reproduce the committed state bit-for-bit.
func equalExact(a, b *Array) bool {
	da, db := a.Data(), b.Data()
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

func TestDurableStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randArray(rng, 16, 16)
	path := filepath.Join(t.TempDir(), "cube.wav")
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard, Path: path, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable() {
		t.Fatal("store does not report durable")
	}
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	hat, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.Durable() {
		t.Fatal("reopened store lost durability")
	}
	if _, recovered := st2.Recovered(); recovered {
		t.Fatal("clean reopen reported a recovery")
	}
	hat2, err := st2.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if !equalExact(hat, hat2) {
		t.Fatal("transform changed across close/reopen")
	}
	p := []int{3, 14}
	v, _, err := st2.Point(p...)
	if err != nil {
		t.Fatal(err)
	}
	if d := v - src.At(p...); d > 1e-8 || d < -1e-8 {
		t.Fatalf("point %v = %g, want %g", p, v, src.At(p...))
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck not clean: %+v", rep)
	}
}

func TestFsckRejectsNonDurableStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.wav")
	st, err := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Fsck(path); err == nil {
		t.Fatal("fsck accepted a non-durable store")
	}
}

func TestSaveMetaLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cube.wav")
	st, err := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard, Path: path, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %q after atomic meta writes", e.Name())
		}
	}
}

// TestStoreCrashCampaign is the acceptance criterion for the crash-safe
// storage layer: kill a SHIFT-SPLIT maintenance batch (MergeBlock) at
// every physical write index on a file-backed durable store, reopen with
// OpenStore, and require the recovered transform to equal — coefficient
// for coefficient — either the pre-merge or the post-merge transform,
// with fsck reporting a clean store.
func TestStoreCrashCampaign(t *testing.T) {
	seed := crashSeed(t)
	rng := rand.New(rand.NewSource(21))
	src := randArray(rng, 8, 8)
	delta := randArray(rng, 4, 4)
	blk := CubeBlock(2, 1, 1) // the 4x4 block at (4,4)
	deltaHat := Transform(delta, Standard)

	// Reference states from an identical in-memory pipeline: recovery must
	// reproduce one of these exactly.
	ref, err := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard, TileBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	preHat, err := ref.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.MergeBlock(blk, deltaHat); err != nil {
		t.Fatal(err)
	}
	postHat, err := ref.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	dir := t.TempDir()
	build := func(name string, plan *storage.CrashPlan) (*Store, string) {
		path := filepath.Join(dir, name)
		st, err := CreateStore(StoreOptions{
			Shape: []int{8, 8}, Form: Standard, TileBits: 1,
			Path: path, Durable: true, FaultPlan: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.TransformChunked(src, 2); err != nil {
			t.Fatalf("setup transform: %v", err)
		}
		return st, path
	}

	// Dry run: how many physical mutations does the merge take?
	dryPlan := storage.NewCrashPlan(seed)
	dry, _ := build("dry.wav", dryPlan)
	preOps := dryPlan.Ops()
	if err := dry.MergeBlock(blk, deltaHat); err != nil {
		t.Fatal(err)
	}
	totalOps := dryPlan.Ops() - preOps
	if err := dry.Close(); err != nil {
		t.Fatal(err)
	}
	if totalOps < 8 {
		t.Fatalf("merge took only %d mutations — campaign is vacuous", totalOps)
	}
	t.Logf("merge batch = %d physical mutations", totalOps)

	preSeen, postSeen := 0, 0
	for w := int64(1); w <= totalOps; w++ {
		plan := storage.NewCrashPlan(seed + 100*w)
		st, path := build("t"+strconv.FormatInt(w, 10)+".wav", plan)
		plan.ArmAt(plan.Ops() + w)
		err := st.MergeBlock(blk, deltaHat)
		if w < totalOps && !errors.Is(err, storage.ErrCrashed) {
			t.Fatalf("trial %d: expected simulated power cut, got %v", w, err)
		}
		_ = st.Close() // dead machine; errors expected

		st2, err := OpenStore(path)
		if err != nil {
			t.Fatalf("trial %d: reopen after crash: %v", w, err)
		}
		got, err := st2.ReadTransform()
		if err != nil {
			t.Fatalf("trial %d: read recovered transform: %v", w, err)
		}
		switch {
		case equalExact(got, preHat):
			preSeen++
		case equalExact(got, postHat):
			postSeen++
		default:
			t.Fatalf("trial %d: recovered transform is neither pre- nor post-merge", w)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("trial %d: close recovered store: %v", w, err)
		}
		rep, err := Fsck(path)
		if err != nil {
			t.Fatalf("trial %d: fsck: %v", w, err)
		}
		if !rep.Clean() {
			t.Fatalf("trial %d: fsck not clean: %+v", w, rep)
		}
	}
	t.Logf("campaign: %d trials, %d recovered pre-merge, %d post-merge", totalOps, preSeen, postSeen)
	if preSeen == 0 || postSeen == 0 {
		t.Fatalf("campaign never exercised both outcomes (pre=%d post=%d)", preSeen, postSeen)
	}
}
