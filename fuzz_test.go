package shiftsplit

import (
	"math"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/haar"
)

// Native fuzz targets. Without -fuzz they run their seed corpus as ordinary
// tests; under `go test -fuzz=Fuzz...` they explore the input space.

func FuzzHaarRoundTrip(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, -5.0, 0.5, 100.0, -0.001)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(math.MaxFloat32, -math.MaxFloat32, 1e-300, -1e-300, 1.0, -1.0, 2.0, -2.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i float64) {
		in := []float64{a, b, c, d, e, g, h, i}
		for _, v := range in {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		back := haar.Inverse(haar.Transform(in))
		for j := range in {
			scale := math.Abs(in[j]) + 1
			if math.Abs(back[j]-in[j]) > 1e-9*scale {
				t.Fatalf("round trip differs at %d: %g vs %g", j, back[j], in[j])
			}
		}
	})
}

func FuzzMergeExtract(f *testing.F) {
	f.Add(int64(1), uint8(0), 1.0, 2.0, 3.0, 4.0)
	f.Add(int64(7), uint8(3), -1.0, 0.0, 1e6, -1e-6)
	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		block := FromSlice([]float64{a, b, c, d}, 4)
		bHat := Transform(block, Standard)
		k := int(kRaw) % 8 // 8 level-2 blocks in a 32-domain
		aHat := NewArray(32)
		if err := Merge(aHat, Standard, Block{Levels: []int{2}, Pos: []int{k}}, bHat); err != nil {
			t.Fatal(err)
		}
		got, err := Extract(aHat, Standard, Block{Levels: []int{2}, Pos: []int{k}})
		if err != nil {
			t.Fatal(err)
		}
		vals := Inverse(got, Standard)
		for i, want := range []float64{a, b, c, d} {
			scale := math.Abs(want) + 1
			if math.Abs(vals.At(i)-want) > 1e-9*scale {
				t.Fatalf("extract differs at %d: %g vs %g", i, vals.At(i), want)
			}
		}
	})
}

func FuzzBlockAt(f *testing.F) {
	f.Add(0, 4, 0, 4)
	f.Add(8, 8, 16, 16)
	f.Add(3, 5, 7, 2)
	f.Fuzz(func(t *testing.T, s0, l0, s1, l1 int) {
		b, err := BlockAt([]int{s0, s1}, []int{l0, l1})
		if err != nil {
			return // invalid inputs are fine; they must just not panic
		}
		// A valid block must round-trip its geometry.
		start := b.Start()
		shape := b.Shape()
		if start[0] != s0 || start[1] != s1 || shape[0] != l0 || shape[1] != l1 {
			t.Fatalf("BlockAt(%d,%d,%d,%d) round trip = %v+%v", s0, s1, l0, l1, start, shape)
		}
	})
}
