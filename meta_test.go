package shiftsplit

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	src := randArray(rng, 16, 16)
	path := filepath.Join(t.TempDir(), "persist.wav")

	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: NonStandard, TileBits: 2, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Materialize(src); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Form() != NonStandard {
		t.Errorf("form = %v", re.Form())
	}
	if sh := re.Shape(); sh[0] != 16 || sh[1] != 16 {
		t.Errorf("shape = %v", sh)
	}
	// Materialization state survived: single-block point queries still work.
	v, io, err := re.Point(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if io != 1 {
		t.Errorf("reopened point query cost %d blocks", io)
	}
	if math.Abs(v-src.At(5, 9)) > 1e-8 {
		t.Errorf("reopened point = %g, want %g", v, src.At(5, 9))
	}
	// Range sums too.
	sum, _, err := re.RangeSum([]int{2, 3}, []int{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := src.SumRange([]int{2, 3}, []int{5, 7}); math.Abs(sum-want) > 1e-6 {
		t.Errorf("reopened range sum %g, want %g", sum, want)
	}
}

func TestOpenStoreMissingMeta(t *testing.T) {
	if _, err := OpenStore(filepath.Join(t.TempDir(), "nothing.wav")); err == nil {
		t.Error("missing metadata accepted")
	}
}

func TestSyncInMemoryIsNoop(t *testing.T) {
	st, err := CreateStore(StoreOptions{Shape: []int{8}, Form: Standard})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Sync(); err != nil {
		t.Errorf("Sync on in-memory store: %v", err)
	}
}

func TestOpenStoreCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.wav")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".meta.json", []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Error("corrupt metadata accepted")
	}
	if err := os.WriteFile(path+".meta.json", []byte(`{"shape":[12],"form":"standard","tile_bits":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Error("bad extent in metadata accepted")
	}
	if err := os.WriteFile(path+".meta.json", []byte(`{"shape":[8],"form":"hexagonal","tile_bits":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Error("unknown form in metadata accepted")
	}
}
