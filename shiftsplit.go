// Package shiftsplit is an I/O-efficient maintenance library for
// wavelet-transformed multidimensional data, reproducing Jahangiri,
// Sacharidis and Shahabi, "SHIFT-SPLIT: I/O Efficient Maintenance of
// Wavelet-Transformed Multidimensional Data" (SIGMOD 2005).
//
// The library decomposes dense multidimensional arrays with the unnormalized
// Haar wavelet in either the standard or the non-standard form, stores the
// coefficients on block storage under the paper's optimal tiling, and
// maintains them entirely in the wavelet domain:
//
//   - Transform / Inverse — in-memory decomposition of both forms;
//   - Merge / Extract — the SHIFT-SPLIT operations: fold a dyadic block's
//     transform into an enclosing transform, or pull one out, without
//     touching the rest (paper §4);
//   - Store — a tiled, I/O-counted, optionally file-backed transform
//     supporting chunked bulk transformation (Results 1–2), point and
//     range-sum queries, and partial reconstruction (Result 6);
//   - Appender — appending in the wavelet domain with automatic domain
//     expansion (paper §5.2);
//   - StreamSynopsis — best-K-term synopsis maintenance over unbounded
//     streams with buffered SHIFT-SPLIT updates (Result 3).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package shiftsplit

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// Form selects the multidimensional decomposition.
type Form = wavelet.Form

// The two decomposition forms of §2.1.
const (
	Standard    = wavelet.Standard
	NonStandard = wavelet.NonStandard
)

// Array is a dense row-major multidimensional array of float64, the
// in-memory representation of datasets and transforms.
type Array = ndarray.Array

// NewArray allocates a zero array with the given power-of-two-friendly
// shape (transform operations additionally require power-of-two extents).
func NewArray(shape ...int) *Array { return ndarray.New(shape...) }

// FromSlice wraps data (without copying) as an array of the given shape.
func FromSlice(data []float64, shape ...int) *Array { return ndarray.FromSlice(data, shape...) }

// Transform decomposes a into the requested form. Extents must be powers of
// two; the non-standard form requires a cubic array.
func Transform(a *Array, form Form) *Array { return wavelet.Transform(a, form) }

// Inverse reconstructs the original array from its transform.
func Inverse(hat *Array, form Form) *Array { return wavelet.Inverse(hat, form) }

// Block identifies a multidimensional dyadic block: in dimension t it spans
// [Pos[t]*2^Levels[t], (Pos[t]+1)*2^Levels[t]).
type Block struct {
	Levels []int
	Pos    []int
}

// CubeBlock builds a cubic block with the same level in every dimension.
func CubeBlock(level int, pos ...int) Block {
	levels := make([]int, len(pos))
	for i := range levels {
		levels[i] = level
	}
	return Block{Levels: levels, Pos: append([]int(nil), pos...)}
}

// BlockAt returns the dyadic block with the given per-dimension start and
// edge (both must describe a dyadic range) or an error.
func BlockAt(start, shape []int) (Block, error) {
	if len(start) != len(shape) {
		return Block{}, fmt.Errorf("shiftsplit: start %v and shape %v disagree", start, shape)
	}
	b := Block{Levels: make([]int, len(start)), Pos: make([]int, len(start))}
	for t := range start {
		iv, ok := dyadic.FromRange(start[t], shape[t])
		if !ok {
			return Block{}, fmt.Errorf("shiftsplit: [%d,+%d) in dim %d is not dyadic", start[t], shape[t], t)
		}
		b.Levels[t] = iv.Level
		b.Pos[t] = iv.Pos
	}
	return b, nil
}

// Start returns the block's lower corner.
func (b Block) Start() []int {
	s := make([]int, len(b.Pos))
	for i := range s {
		s[i] = b.Pos[i] << uint(b.Levels[i])
	}
	return s
}

// Shape returns the block's edge lengths.
func (b Block) Shape() []int {
	s := make([]int, len(b.Pos))
	for i := range s {
		s[i] = 1 << uint(b.Levels[i])
	}
	return s
}

func (b Block) toRange() dyadic.Range {
	r := make(dyadic.Range, len(b.Pos))
	for i := range b.Pos {
		r[i] = dyadic.NewInterval(b.Levels[i], b.Pos[i])
	}
	return r
}

// isCubic reports whether the block has one level across dimensions.
func (b Block) isCubic() bool {
	for _, l := range b.Levels[1:] {
		if l != b.Levels[0] {
			return false
		}
	}
	return true
}

func (b Block) validate(shape []int) error {
	if len(b.Levels) != len(shape) || len(b.Pos) != len(shape) {
		return fmt.Errorf("shiftsplit: block %v/%v for shape %v", b.Levels, b.Pos, shape)
	}
	for t := range shape {
		if !bitutil.IsPow2(shape[t]) {
			return fmt.Errorf("shiftsplit: extent %d is not a power of two", shape[t])
		}
		n := bitutil.Log2(shape[t])
		if b.Levels[t] < 0 || b.Levels[t] > n {
			return fmt.Errorf("shiftsplit: block level %d out of [0,%d] in dim %d", b.Levels[t], n, t)
		}
		if b.Pos[t] < 0 || b.Pos[t] >= 1<<uint(n-b.Levels[t]) {
			return fmt.Errorf("shiftsplit: block pos %d out of range in dim %d", b.Pos[t], t)
		}
	}
	return nil
}

// Merge adds the embedding of bHat — the transform (in the same form) of a
// block's contents — into the transform aHat, in place. This is SHIFT-SPLIT:
// it both constructs transforms of partial data (Example 1 of §4) and
// applies batched updates (Example 2), because the Haar transform is linear.
func Merge(aHat *Array, form Form, b Block, bHat *Array) error {
	if err := b.validate(aHat.Shape()); err != nil {
		return err
	}
	for t, want := range b.Shape() {
		if bHat.Extent(t) != want {
			return fmt.Errorf("shiftsplit: block transform shape %v, block wants %v", bHat.Shape(), b.Shape())
		}
	}
	switch form {
	case Standard:
		core.MergeStandard(aHat, b.toRange(), bHat)
		return nil
	case NonStandard:
		if !b.isCubic() {
			return fmt.Errorf("shiftsplit: non-standard merge needs a cubic block, got levels %v", b.Levels)
		}
		core.MergeNonStandard(aHat, b.Levels[0], b.Pos, bHat)
		return nil
	default:
		return fmt.Errorf("shiftsplit: unknown form %v", form)
	}
}

// Extract computes the exact transform of a block's contents from aHat via
// the inverse SHIFT-SPLIT (paper §5.4), reading only the block subtree and
// the root path.
func Extract(aHat *Array, form Form, b Block) (*Array, error) {
	if err := b.validate(aHat.Shape()); err != nil {
		return nil, err
	}
	switch form {
	case Standard:
		return core.ExtractStandard(aHat, b.toRange()), nil
	case NonStandard:
		if !b.isCubic() {
			return nil, fmt.Errorf("shiftsplit: non-standard extract needs a cubic block, got levels %v", b.Levels)
		}
		return core.ExtractNonStandard(aHat, b.Levels[0], b.Pos), nil
	default:
		return nil, fmt.Errorf("shiftsplit: unknown form %v", form)
	}
}

// BlockAverage returns the average of the original data over a block,
// reconstructed from the transform via the inverse SPLIT alone.
func BlockAverage(aHat *Array, form Form, b Block) (float64, error) {
	if err := b.validate(aHat.Shape()); err != nil {
		return 0, err
	}
	switch form {
	case Standard:
		return core.ScalingStandard(aHat, b.toRange()), nil
	case NonStandard:
		if !b.isCubic() {
			return 0, fmt.Errorf("shiftsplit: non-standard average needs a cubic block")
		}
		return core.ScalingNonStandard(aHat, b.Levels[0], b.Pos), nil
	default:
		return 0, fmt.Errorf("shiftsplit: unknown form %v", form)
	}
}

// PointValue reconstructs one cell from an in-memory transform using the
// Lemma-1 path (log-many coefficients).
func PointValue(hat *Array, form Form, point []int) float64 {
	if form == Standard {
		return wavelet.ReconstructPointStandard(hat, point)
	}
	return wavelet.ReconstructPointNonStandard(hat, point)
}

// RangeSum evaluates the sum of the original data over the half-open box
// [start, start+shape) directly from an in-memory transform, touching
// O(log^d) coefficients in the standard form (Lemma 2).
func RangeSum(hat *Array, form Form, start, shape []int) float64 {
	if form == Standard {
		return wavelet.RangeSumStandard(hat, start, shape)
	}
	return wavelet.RangeSumNonStandard(hat, start, shape)
}
